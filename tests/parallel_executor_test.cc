// The parallel executor: the work-stealing pool must run every task
// exactly once, and sharded parallel runs must be indistinguishable —
// tuple for tuple — from sequential unsharded runs on every engine, on
// randomized workloads, including the degenerate shapes (empty shards,
// impossible budgets, rejected option combinations).
#include "engine/parallel_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "engine/join_engine.h"
#include "index/index_view.h"
#include "workload/generators.h"

namespace tetris {
namespace {

TEST(WorkStealingPoolTest, RunsEveryTaskExactlyOnce) {
  WorkStealingPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&hits, i] { ++hits[i]; });
  }
  pool.Run(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkStealingPoolTest, ReusableAcrossRunsAndSingleThreaded) {
  WorkStealingPool pool(1);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) tasks.push_back([&count] { ++count; });
    pool.Run(std::move(tasks));
  }
  EXPECT_EQ(count.load(), 30);
  pool.Run({});  // empty batch is a no-op, not a hang
}

TEST(WorkStealingPoolTest, ClampsThreadCount) {
  WorkStealingPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  EXPECT_GE(WorkStealingPool::HardwareThreads(), 1);
}

TEST(WorkStealingPoolTest, GlobalPoolIsOneProcessWideInstance) {
  WorkStealingPool& a = WorkStealingPool::Global();
  WorkStealingPool& b = WorkStealingPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.threads(), WorkStealingPool::HardwareThreads());
}

TEST(WorkStealingPoolTest, PoolThreadsPersistAcrossRuns) {
  // No per-call thread churn: across many Runs, the union of serving
  // threads never exceeds the pool width (per-call thread creation
  // would surface a fresh id per round).
  WorkStealingPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int round = 0; round < 6; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) {
      tasks.push_back([&mu, &ids] {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      });
    }
    pool.Run(std::move(tasks));
  }
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
}

TEST(WorkStealingPoolTest, NestedRunHelpsInsteadOfDeadlocking) {
  // Each outer task issues an inner Run on the same pool: with only two
  // workers this deadlocks unless the nested Run helps drain the queue.
  WorkStealingPool pool(2);
  std::atomic<int> inner_hits{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &inner_hits] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) {
        inner.push_back([&inner_hits] { ++inner_hits; });
      }
      pool.Run(std::move(inner));
    });
  }
  pool.Run(std::move(outer));
  EXPECT_EQ(inner_hits.load(), 32);
}

TEST(WorkStealingPoolTest, ConcurrentExternalRunsShareThePool) {
  WorkStealingPool pool(2);
  std::atomic<int> hits{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&pool, &hits] {
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < 16; ++i) tasks.push_back([&hits] { ++hits; });
      pool.Run(std::move(tasks));
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(hits.load(), 48);
}

TEST(ParallelForTest, CoversTheWholeRange) {
  constexpr int kN = 57;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(/*threads=*/3, kN, [&hits](int i) { ++hits[i]; });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  ParallelFor(/*threads=*/3, 0, [](int) { FAIL(); });
}

// Sharded output == unsharded output, engine by engine. This is the
// cross-engine agreement matrix of the acceptance criteria: randomized
// triangle (cyclic) and path (acyclic) workloads, all 11 engines.
TEST(RunShardedJoinTest, ShardedMatchesUnshardedForEveryEngine) {
  std::vector<QueryInstance> workloads;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    workloads.push_back(
        RandomTriangle(/*tuples_per_rel=*/40, /*d=*/4, seed));
    workloads.push_back(
        RandomPath(/*hops=*/3, /*tuples_per_rel=*/50, /*d=*/4, seed));
  }
  for (size_t w = 0; w < workloads.size(); ++w) {
    SCOPED_TRACE(w);
    const QueryInstance& q = workloads[w];
    for (EngineKind kind : AllEngineKinds()) {
      SCOPED_TRACE(EngineKindName(kind));
      EngineResult plain = RunJoin(q.query, kind);
      EngineOptions sharded_opts;
      sharded_opts.shards = 4;
      sharded_opts.threads = 4;
      EngineResult sharded = RunJoin(q.query, kind, sharded_opts);
      if (!EngineSupports(kind, q.query)) {
        EXPECT_FALSE(plain.ok);
        EXPECT_FALSE(sharded.ok);
        continue;
      }
      ASSERT_TRUE(plain.ok) << plain.error;
      ASSERT_TRUE(sharded.ok) << sharded.error;
      EXPECT_EQ(sharded.tuples, plain.tuples);
      EXPECT_EQ(sharded.stats.output_tuples, plain.stats.output_tuples);
      EXPECT_EQ(sharded.stats.shards, 4u);
      EXPECT_EQ(sharded.shard_runs.size(), 4u);
    }
  }
}

TEST(RunShardedJoinTest, ShardRunsAreOrderedByIdWithPartialCounts) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/50, /*d=*/4,
                                   /*seed=*/11);
  EngineOptions opts;
  opts.shards = 8;
  opts.threads = 2;
  EngineResult r = RunJoin(q.query, EngineKind::kGenericJoin, opts);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.shard_runs.size(), 8u);
  size_t total = 0;
  for (size_t i = 0; i < r.shard_runs.size(); ++i) {
    EXPECT_EQ(r.shard_runs[i].shard_id, static_cast<int>(i));
    EXPECT_FALSE(r.shard_runs[i].box.empty());
    total += r.shard_runs[i].output_tuples;
  }
  // Shards are disjoint: partial outputs add up exactly.
  EXPECT_EQ(total, r.tuples.size());
}

TEST(RunShardedJoinTest, ThreadsAloneImplyAutoSharding) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/30, /*d=*/4,
                                   /*seed=*/12);
  EngineResult plain = RunJoin(q.query, EngineKind::kTetrisPreloaded);
  EngineOptions opts;
  opts.threads = 4;  // shards left at 0: the facade auto-shards
  EngineResult r = RunJoin(q.query, EngineKind::kTetrisPreloaded, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stats.shards, 4u);
  EXPECT_GE(r.stats.threads, 1u);
  EXPECT_EQ(r.tuples, plain.tuples);
}

TEST(RunShardedJoinTest, MemoryBudgetSplitsAndIsRespectedOrReported) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/60, /*d=*/5,
                                   /*seed=*/13);
  EngineResult plain = RunJoin(q.query, EngineKind::kTetrisPreloaded);
  ASSERT_TRUE(plain.ok);

  // A budget in the planner's own estimate domain (input payload)
  // forces a real split, and the estimates then fit it.
  const size_t estimate = PlanShards(q.query, {}).max_estimated_peak_bytes;
  ASSERT_GT(estimate, 0u);
  EngineOptions opts;
  opts.memory_budget_bytes = estimate / 4;
  EngineResult r = RunJoin(q.query, EngineKind::kTetrisPreloaded, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.stats.shards, 2u);
  EXPECT_EQ(r.tuples, plain.tuples);

  // Acceptance contract: every shard's *actual* peak fits the budget,
  // or the run says which shard overran and by how much.
  for (const ShardRunInfo& shard : r.shard_runs) {
    if (shard.skipped_empty) continue;
    if (shard.stats.memory.PeakBytes() > opts.memory_budget_bytes) {
      EXPECT_NE(r.shard_note.find("exceeded the"), std::string::npos);
    }
  }
  EXPECT_EQ(r.stats.max_shard_peak_bytes,
            [&r] {
              size_t peak = 0;
              for (const auto& s : r.shard_runs) {
                peak = std::max(peak, s.stats.memory.PeakBytes());
              }
              return peak;
            }());

  // A budget below the engine's actual (KB-dominated) peak but above
  // the payload estimate cannot be anticipated by the planner; the
  // executor still reports the overrun instead of staying silent.
  const size_t full_peak = plain.stats.memory.PeakBytes();
  if (full_peak / 2 > estimate) {
    EngineOptions tight;
    tight.memory_budget_bytes = full_peak / 2;
    EngineResult t = RunJoin(q.query, EngineKind::kTetrisPreloaded, tight);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(t.tuples, plain.tuples);
    bool some_overran = false;
    for (const ShardRunInfo& shard : t.shard_runs) {
      if (!shard.skipped_empty &&
          shard.stats.memory.PeakBytes() > tight.memory_budget_bytes) {
        some_overran = true;
      }
    }
    if (some_overran) {
      EXPECT_FALSE(t.shard_note.empty());
    }
  }
}

TEST(RunShardedJoinTest, ImpossibleBudgetStillFinishesAndReports) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/30, /*d=*/4,
                                   /*seed=*/14);
  EngineResult plain = RunJoin(q.query, EngineKind::kLeapfrog);
  EngineOptions opts;
  opts.memory_budget_bytes = 1;  // cannot be met
  EngineResult r = RunJoin(q.query, EngineKind::kLeapfrog, opts);
  ASSERT_TRUE(r.ok) << r.error;  // degrade gracefully, not hang or fail
  EXPECT_FALSE(r.shard_note.empty());
  EXPECT_EQ(r.tuples, plain.tuples);
}

TEST(RunShardedJoinTest, EmptyShardsAreSkippedNotRun) {
  // Clustered data (all values < 2^(d-1)) leaves the upper subcubes
  // empty; those shards must be skipped and the output still exact.
  Relation r1 = Relation::Make("R", {"A", "B"},
                               {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Relation r2 = Relation::Make("S", {"B", "C"},
                               {{1, 0}, {2, 1}, {3, 2}, {0, 3}});
  JoinQuery q = JoinQuery::Build({&r1, &r2});
  EngineOptions opts;
  opts.depth = 3;
  opts.shards = 8;
  EngineResult sharded = RunJoin(q, EngineKind::kPairwiseHash, opts);
  ASSERT_TRUE(sharded.ok) << sharded.error;
  EngineOptions plain_opts;
  plain_opts.depth = 3;
  EngineResult plain = RunJoin(q, EngineKind::kPairwiseHash, plain_opts);
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(sharded.tuples, plain.tuples);
  size_t skipped = 0;
  for (const ShardRunInfo& shard : sharded.shard_runs) {
    if (shard.skipped_empty) {
      ++skipped;
      EXPECT_EQ(shard.output_tuples, 0u);
    }
  }
  EXPECT_GT(skipped, 0u);
}

TEST(RunShardedJoinTest, CustomIndexesRideThroughTetrisShardingOnly) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/20, /*d=*/4,
                                   /*seed=*/15);
  // The Tetris family wraps caller indexes in zero-copy IndexViews per
  // shard, so the sharded run must match the plain custom-index run.
  auto owned = MakeSaoConsistentIndexes(q.query, {0, 1, 2}, q.depth);
  EngineOptions opts;
  opts.order = {0, 1, 2};
  opts.indexes = IndexPtrs(owned);
  EngineResult plain = RunJoin(q.query, EngineKind::kTetrisPreloaded, opts);
  ASSERT_TRUE(plain.ok) << plain.error;
  opts.shards = 4;
  EngineResult sharded =
      RunJoin(q.query, EngineKind::kTetrisPreloaded, opts);
  ASSERT_TRUE(sharded.ok) << sharded.error;
  EXPECT_EQ(sharded.tuples, plain.tuples);
  EXPECT_EQ(sharded.stats.shards, 4u);

  // The baselines rescan materialized shard copies, so caller indexes
  // cannot ride along there.
  EngineOptions baseline_opts;
  baseline_opts.indexes = IndexPtrs(owned);
  baseline_opts.shards = 4;
  EngineResult rejected =
      RunJoin(q.query, EngineKind::kLeapfrog, baseline_opts);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("indexes"), std::string::npos);

  EngineOptions bad_shards;
  bad_shards.shards = -2;
  EXPECT_FALSE(RunJoin(q.query, EngineKind::kLeapfrog, bad_shards).ok);
  EngineOptions bad_threads;
  bad_threads.threads = -1;
  EXPECT_FALSE(RunJoin(q.query, EngineKind::kLeapfrog, bad_threads).ok);
}

// The acceptance memory contract of the zero-copy refactor: a finely
// sharded run's peak no longer scales with the sum of materialized shard
// copies — per-shard peaks stay within a constant of the unsharded run,
// the Tetris shards carry no per-shard index copies at all, and the plan
// itself keeps only row indices.
TEST(RunShardedJoinTest, ShardedPeakStaysNearUnshardedWithoutCopies) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/120, /*d=*/6,
                                   /*seed=*/31);
  EngineResult plain = RunJoin(q.query, EngineKind::kTetrisPreloaded);
  ASSERT_TRUE(plain.ok);
  const size_t plain_peak = plain.stats.memory.PeakBytes();
  ASSERT_GT(plain_peak, 0u);

  EngineOptions opts;
  opts.shards = 16;
  EngineResult sharded = RunJoin(q.query, EngineKind::kTetrisPreloaded, opts);
  ASSERT_TRUE(sharded.ok) << sharded.error;
  EXPECT_EQ(sharded.tuples, plain.tuples);

  // Per-shard peaks bounded by a constant of the unsharded peak (the
  // clipped per-shard knowledge bases are no bigger than the full one;
  // the factor absorbs the box-complement slabs).
  EXPECT_LE(sharded.stats.max_shard_peak_bytes, 2 * plain_peak + 4096);

  // Zero copies: every live shard's own index residency is a few view
  // objects, not a restricted SortedIndex rebuild. Pinned exactly: the
  // sum over shards is at most one IndexView header per (live shard,
  // atom). (The old proxy "summed < one full index" stopped encoding
  // this once the columnar index shrank below 48 view headers — a
  // single rebuilt shard index would already cost rows*arity*8 and
  // blow this bound.)
  size_t summed_shard_index_bytes = 0;
  size_t live_shards = 0;
  for (const ShardRunInfo& shard : sharded.shard_runs) {
    if (!shard.skipped_empty) {
      summed_shard_index_bytes += shard.stats.memory.index_bytes;
      ++live_shards;
    }
  }
  EXPECT_LE(summed_shard_index_bytes,
            live_shards * q.query.atoms().size() * sizeof(IndexView));

  // The run-level counter still reports the shared base indexes once.
  EXPECT_GE(sharded.stats.memory.index_bytes,
            plain.stats.memory.index_bytes);

  // Planner residency: row indices, not tuple copies.
  EXPECT_GT(sharded.stats.plan_bytes, 0u);
  size_t total_tuples = 0;
  for (const auto& atom : q.query.atoms()) total_tuples += atom.rel->size();
  EXPECT_LE(sharded.stats.plan_bytes,
            total_tuples * sizeof(size_t) + 16 * sizeof(Shard) + 1024);
}

// Nested parallelism on one shared executor: a parallel engine sweep
// whose engines shard internally reuses the same workers (the nested
// Run helps), stays within the pool's width, and still produces the
// sequential results. This is the global-pool reuse path the TSan job
// covers.
TEST(RunShardedJoinTest, NestedShardingSharesOneExecutor) {
  WorkStealingPool pool(3);
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/40, /*d=*/4,
                                   /*seed=*/32);
  std::vector<EngineKind> kinds = {EngineKind::kTetrisPreloaded,
                                   EngineKind::kGenericJoin,
                                   EngineKind::kPairwiseHash};
  std::vector<EngineResult> nested(kinds.size());
  ParallelFor(&pool, /*max_parallel=*/0,
              static_cast<int>(kinds.size()), [&](int i) {
                EngineOptions opts;
                opts.shards = 4;
                opts.threads = 3;
                opts.executor = &pool;  // nested Run on the same pool
                nested[i] = RunJoin(q.query, kinds[i], opts);
              });
  for (size_t i = 0; i < kinds.size(); ++i) {
    ASSERT_TRUE(nested[i].ok) << nested[i].error;
    EngineResult plain = RunJoin(q.query, kinds[i]);
    ASSERT_TRUE(plain.ok);
    EXPECT_EQ(nested[i].tuples, plain.tuples);
    // The worker cap is the shared budget, not a new set of threads.
    EXPECT_LE(nested[i].stats.threads, 3u);
  }
}

// Budget runs calibrate the estimator from a probe pass and audit the
// prediction after the run.
TEST(RunShardedJoinTest, BudgetRunsReportTheEstimatorAudit) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/60, /*d=*/5,
                                   /*seed=*/33);
  const size_t estimate = PlanShards(q.query, {}).max_estimated_peak_bytes;
  EngineOptions opts;
  opts.memory_budget_bytes = estimate / 4;
  EngineResult r = RunJoin(q.query, EngineKind::kTetrisPreloaded, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.stats.estimated_max_shard_peak_bytes, 0u);
  EXPECT_NE(r.shard_note.find("estimator("), std::string::npos)
      << r.shard_note;
  EXPECT_NE(r.shard_note.find("predicted max shard peak"),
            std::string::npos);
}

// Probe passes are real shards of the output space: when the final plan
// contains the probe's subcube, the probe's output is reused as that
// shard's result instead of being discarded — and the merged output is
// still exactly the unsharded one.
TEST(RunShardedJoinTest, ProbeResultsAreReusedAsShardOutputs) {
  QueryInstance q = FullGridTriangle(/*m=*/8);  // balanced: probes run
  EngineOptions opts;
  opts.shards = 8;  // the final plan repeats the 8-way probe plan
  opts.memory_budget_bytes = 512 << 20;  // generous: k stays at 3
  EngineResult sharded = RunJoin(q.query, EngineKind::kTetrisPreloaded,
                                 opts);
  ASSERT_TRUE(sharded.ok) << sharded.error;
  EXPECT_NE(sharded.shard_note.find("reused"), std::string::npos)
      << sharded.shard_note;
  EXPECT_NE(sharded.shard_note.find("probe result"), std::string::npos);
  EngineResult plain = RunJoin(q.query, EngineKind::kTetrisPreloaded, {});
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(sharded.tuples, plain.tuples);
}

// The budget accounting cannot lie by omission: materialized shard
// copies count toward the per-shard peak (the baselines keep them
// resident for the whole shard run), and a budget below the
// always-resident shared base indexes is called out up front.
TEST(RunShardedJoinTest, BudgetAccountingCountsCopiesAndBaseIndexes) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/50, /*d=*/5,
                                   /*seed=*/34);
  EngineOptions opts;
  opts.shards = 4;
  EngineResult lf = RunJoin(q.query, EngineKind::kLeapfrog, opts);
  ASSERT_TRUE(lf.ok) << lf.error;
  for (const ShardRunInfo& shard : lf.shard_runs) {
    if (shard.skipped_empty) continue;
    // The restricted input copy is resident: the shard peak can never
    // read as ~0 for a selective join.
    EXPECT_GT(shard.stats.memory.index_bytes, 0u) << shard.shard_id;
    EXPECT_GE(shard.stats.memory.PeakBytes(),
              shard.stats.memory.index_bytes);
  }

  EngineOptions tiny;
  tiny.memory_budget_bytes = 1;  // far below the base SortedIndexes
  EngineResult tp = RunJoin(q.query, EngineKind::kTetrisPreloaded, tiny);
  ASSERT_TRUE(tp.ok) << tp.error;
  EXPECT_NE(tp.shard_note.find("below the shared base indexes"),
            std::string::npos)
      << tp.shard_note;
}

TEST(RunShardedJoinTest, ShardedRunHonorsOrderHints) {
  QueryInstance q = RandomTriangle(/*tuples_per_rel=*/40, /*d=*/4,
                                   /*seed=*/16);
  EngineOptions opts;
  opts.order = {2, 0, 1};
  opts.shards = 4;
  EngineResult sharded = RunJoin(q.query, EngineKind::kLeapfrog, opts);
  ASSERT_TRUE(sharded.ok) << sharded.error;
  EngineOptions plain_opts;
  plain_opts.order = {2, 0, 1};
  EngineResult plain = RunJoin(q.query, EngineKind::kLeapfrog, plain_opts);
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(sharded.tuples, plain.tuples);
}

}  // namespace
}  // namespace tetris
