#include "kb/dyadic_tree_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "kb/box_oracle.h"
#include "util/rng.h"

namespace tetris {
namespace {

DyadicInterval Iv(uint64_t bits, int len) {
  return {bits, static_cast<uint8_t>(len)};
}
const DyadicInterval kLam = DyadicInterval::Lambda();

TEST(DyadicTreeStore, EmptyFindsNothing) {
  DyadicTreeStore store(2);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.FindContaining(DyadicBox::Universal(2)), nullptr);
}

TEST(DyadicTreeStore, InsertAndFindExact) {
  DyadicTreeStore store(2);
  DyadicBox b = DyadicBox::Of({Iv(0b01, 2), Iv(0b1, 1)});
  EXPECT_TRUE(store.Insert(b));
  EXPECT_FALSE(store.Insert(b)) << "duplicate must be rejected";
  EXPECT_EQ(store.size(), 1u);
  const DyadicBox* f = store.FindContaining(b);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, b);
  EXPECT_TRUE(store.ContainsExact(b));
}

TEST(DyadicTreeStore, FindsCoarserBox) {
  DyadicTreeStore store(3);
  DyadicBox coarse = DyadicBox::Of({Iv(0b0, 1), kLam, kLam});
  store.Insert(coarse);
  DyadicBox fine = DyadicBox::Of({Iv(0b0110, 4), Iv(0b10, 2), Iv(0b1, 1)});
  const DyadicBox* f = store.FindContaining(fine);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, coarse);
  // A box outside dim-0 prefix 0 is not covered.
  DyadicBox other = DyadicBox::Of({Iv(0b1, 1), kLam, kLam});
  EXPECT_EQ(store.FindContaining(other), nullptr);
}

TEST(DyadicTreeStore, UniversalBoxCoversAll) {
  DyadicTreeStore store(2);
  store.Insert(DyadicBox::Universal(2));
  EXPECT_NE(store.FindContaining(DyadicBox::Point({3, 9}, 4)), nullptr);
}

TEST(DyadicTreeStore, CollectContainingFindsAllSupersets) {
  DyadicTreeStore store(2);
  DyadicBox a = DyadicBox::Of({kLam, Iv(0b1, 1)});
  DyadicBox b = DyadicBox::Of({Iv(0b1, 1), Iv(0b11, 2)});
  DyadicBox c = DyadicBox::Of({Iv(0b0, 1), kLam});  // disjoint from probe
  store.Insert(a);
  store.Insert(b);
  store.Insert(c);
  std::vector<DyadicBox> out;
  store.CollectContaining(DyadicBox::Point({3, 3}, 2), &out);  // (11, 11)
  EXPECT_EQ(out.size(), 2u);
}

TEST(DyadicTreeStore, AllBoxesReturnsEverything) {
  DyadicTreeStore store(2);
  std::vector<DyadicBox> in = {
      DyadicBox::Of({Iv(0b0, 1), kLam}),
      DyadicBox::Of({Iv(0b1, 1), Iv(0b0, 1)}),
      DyadicBox::Universal(2),
  };
  for (const auto& b : in) store.Insert(b);
  auto all = store.AllBoxes();
  EXPECT_EQ(all.size(), in.size());
  for (const auto& b : in) {
    EXPECT_NE(std::find(all.begin(), all.end(), b), all.end());
  }
}

// Property: FindContaining / CollectContaining agree with a linear scan.
class StoreProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(StoreProperty, AgreesWithLinearScan) {
  const auto [n, d] = GetParam();
  Rng rng(5 * n + d);
  DyadicTreeStore store(n);
  std::vector<DyadicBox> ref;
  auto random_box = [&] {
    DyadicBox b = DyadicBox::Universal(n);
    for (int i = 0; i < n; ++i) {
      int len = static_cast<int>(rng.Below(d + 1));
      b[i] = {rng.Below(uint64_t{1} << len), static_cast<uint8_t>(len)};
    }
    return b;
  };
  for (int i = 0; i < 200; ++i) {
    DyadicBox b = random_box();
    bool inserted = store.Insert(b);
    bool was_new = std::find(ref.begin(), ref.end(), b) == ref.end();
    EXPECT_EQ(inserted, was_new);
    if (was_new) ref.push_back(b);
  }
  EXPECT_EQ(store.size(), ref.size());

  // AllBoxes must enumerate exactly the reference set (as a set; the
  // store's order is tree order, not insertion order).
  auto sorted_keys = [](const std::vector<DyadicBox>& v) {
    std::vector<std::string> keys;
    for (const auto& b : v) keys.push_back(b.ToString());
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(sorted_keys(store.AllBoxes()), sorted_keys(ref));

  for (int i = 0; i < 300; ++i) {
    DyadicBox probe = random_box();
    std::vector<DyadicBox> got;
    store.CollectContaining(probe, &got);
    size_t expected = 0;
    for (const auto& r : ref) {
      if (r.Contains(probe)) ++expected;
    }
    EXPECT_EQ(got.size(), expected);
    const DyadicBox* f = store.FindContaining(probe);
    EXPECT_EQ(f != nullptr, expected > 0);
    if (f != nullptr) {
      EXPECT_TRUE(f->Contains(probe));
    }
    // Differential for the pruned enumeration: CollectIntersecting must
    // equal the brute-force comparability filter over the box list.
    std::vector<DyadicBox> inter;
    store.CollectIntersecting(probe, &inter);
    std::vector<DyadicBox> inter_ref;
    for (const auto& r : ref) {
      if (r.Intersects(probe)) inter_ref.push_back(r);
    }
    EXPECT_EQ(sorted_keys(inter), sorted_keys(inter_ref));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StoreProperty,
    ::testing::Values(std::pair{1, 4}, std::pair{2, 3}, std::pair{3, 3},
                      std::pair{4, 2}, std::pair{2, 8}));

// Pins the pre-arena enumeration contract: AllBoxes order depends only on
// the stored set (DFS over the dyadic tree), never on insertion order —
// path compression keeps every branch point an explicit node, so the
// compressed DFS visits terminating prefixes in the same sequence the
// one-bit-per-node layout did.
TEST(DyadicTreeStore, AllBoxesOrderIsInsertionIndependent) {
  Rng rng(99);
  std::vector<DyadicBox> boxes;
  for (int i = 0; i < 64; ++i) {
    DyadicBox b = DyadicBox::Universal(3);
    for (int c = 0; c < 3; ++c) {
      int len = static_cast<int>(rng.Below(5));
      b[c] = {rng.Below(uint64_t{1} << len), static_cast<uint8_t>(len)};
    }
    boxes.push_back(b);
  }
  DyadicTreeStore fwd(3), rev(3);
  for (const auto& b : boxes) fwd.Insert(b);
  for (auto it = boxes.rbegin(); it != boxes.rend(); ++it) rev.Insert(*it);
  EXPECT_EQ(fwd.AllBoxes(), rev.AllBoxes());
}

// The provenance bit rides along through the component pool.
TEST(DyadicTreeStore, OutputDerivedBitRoundTrips) {
  DyadicTreeStore store(2);
  DyadicBox derived = DyadicBox::Of({Iv(0b0, 1), kLam});
  derived.set_output_derived(true);
  DyadicBox plain = DyadicBox::Of({Iv(0b1, 1), kLam});
  store.Insert(derived);
  store.Insert(plain);
  const DyadicBox* f = store.FindContaining(DyadicBox::Point({0, 0}, 2));
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->output_derived());
  std::vector<DyadicBox> out;
  store.CollectContaining(DyadicBox::Point({3, 0}, 2), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].output_derived());
  for (const DyadicBox& b : store.AllBoxes()) {
    EXPECT_EQ(b.output_derived(), b[0].bits == 0);
  }
}

TEST(KeepMaximalBoxes, RemovesDominated) {
  std::vector<DyadicBox> v = {
      DyadicBox::Of({Iv(0b01, 2), kLam}),
      DyadicBox::Of({Iv(0b0, 1), kLam}),
      DyadicBox::Of({Iv(0b1, 1), Iv(0b1, 1)}),
  };
  KeepMaximalBoxes(&v);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(std::find(v.begin(), v.end(),
                      DyadicBox::Of({Iv(0b0, 1), kLam})),
            v.end());
}

TEST(MaterializedOracle, ProbeReturnsMaximalContainers) {
  MaterializedOracle oracle(2);
  oracle.Add(DyadicBox::Of({Iv(0b0, 1), kLam}));
  oracle.Add(DyadicBox::Of({Iv(0b01, 2), kLam}));  // dominated
  oracle.Add(DyadicBox::Of({Iv(0b1, 1), kLam}));   // doesn't contain probe
  std::vector<DyadicBox> out;
  oracle.Probe(DyadicBox::Point({1, 2}, 2), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], DyadicBox::Of({Iv(0b0, 1), kLam}));
  EXPECT_EQ(oracle.probe_count(), 1);
  EXPECT_EQ(oracle.size(), 3u);
}

TEST(MaterializedOracle, EmptyProbeMeansOutputTuple) {
  MaterializedOracle oracle(2);
  oracle.Add(DyadicBox::Of({Iv(0b0, 1), kLam}));
  std::vector<DyadicBox> out;
  oracle.Probe(DyadicBox::Point({3, 0}, 2), &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace tetris
