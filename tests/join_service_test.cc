// The resident join service (server/join_service.h): admission
// control, snapshot pinning under concurrent mutations, result-cache
// correctness (cached == uncached on every engine; epoch bumps make
// stale entries unreachable), per-query deadlines, and the per-query
// error shape (failures ride in result->ok/error, like BatchResult).
#include "server/join_service.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace tetris {
namespace {

// Registers the canonical triangle pool {R(A,B), S(B,C), T(A,C)}.
void RegisterRandomTriangle(JoinService* service, size_t tuples, int d,
                            uint64_t seed) {
  const struct {
    const char* name;
    const char* a;
    const char* b;
  } specs[] = {{"R", "A", "B"}, {"S", "B", "C"}, {"T", "A", "C"}};
  uint64_t s = seed;
  for (const auto& spec : specs) {
    std::string error;
    ASSERT_TRUE(service->Register(
        RandomRelation(spec.name, {spec.a, spec.b}, tuples, d, ++s), &error))
        << error;
  }
}

QueryRequest Triangle(EngineKind kind) {
  QueryRequest q;
  q.relations = {"R", "S", "T"};
  q.engine = kind;
  return q;
}

TEST(JoinServiceTest, CachedMatchesUncachedAcrossAllEngines) {
  JoinService service;
  RegisterRandomTriangle(&service, /*tuples=*/40, /*d=*/5, /*seed=*/3);
  for (EngineKind kind : AllEngineKinds()) {
    SCOPED_TRACE(EngineKindName(kind));
    const QueryRequest query = Triangle(kind);
    const QueryResponse cold = service.Execute(query);
    const QueryResponse hit = service.Execute(query);
    QueryRequest fresh = query;
    fresh.use_cache = false;
    const QueryResponse uncached = service.Execute(fresh);
    ASSERT_NE(cold.result, nullptr);
    EXPECT_EQ(cold.result->ok, uncached.result->ok)
        << uncached.result->error;
    if (!cold.result->ok) continue;  // the engine rejects this shape
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_FALSE(uncached.cache_hit);
    EXPECT_EQ(hit.result->tuples, uncached.result->tuples);
    EXPECT_EQ(cold.result->tuples, uncached.result->tuples);
  }
}

TEST(JoinServiceTest, EpochBumpMakesStaleEntriesUnreachable) {
  JoinService service;
  std::string error;
  // A one-triangle instance whose output we control exactly:
  // R(1,2) ⋈ S(2,3) ⋈ T(3,1) closes, so the join has one tuple.
  ASSERT_TRUE(service.Register(
      Relation::Make("R", {"A", "B"}, {{1, 2}}), &error)) << error;
  ASSERT_TRUE(service.Register(
      Relation::Make("S", {"B", "C"}, {{2, 3}}), &error)) << error;
  ASSERT_TRUE(service.Register(
      Relation::Make("T", {"C", "A"}, {{3, 1}}), &error)) << error;

  const QueryRequest query = Triangle(EngineKind::kTetrisPreloaded);
  const QueryResponse one = service.Execute(query);
  ASSERT_TRUE(one.result->ok) << one.result->error;
  EXPECT_EQ(one.result->tuples.size(), 1u);
  EXPECT_TRUE(service.Execute(query).cache_hit);

  // Replacing S breaks the triangle: the epoch bump means the next
  // lookup computes a key no stale entry can match — the cached
  // one-tuple result must never be served again.
  ASSERT_TRUE(service.Replace(
      Relation::Make("S", {"B", "C"}, {{2, 4}}), &error)) << error;
  const QueryResponse zero = service.Execute(query);
  EXPECT_FALSE(zero.cache_hit);
  ASSERT_TRUE(zero.result->ok) << zero.result->error;
  EXPECT_EQ(zero.result->tuples.size(), 0u);
  EXPECT_GT(zero.epoch, one.epoch);
  EXPECT_TRUE(service.Execute(query).cache_hit);  // new version re-cached

  // Appending the closing tuple restores the join through yet another
  // epoch; the empty cached result is equally unreachable.
  ASSERT_TRUE(service.Append("S", {{2, 3}}, &error)) << error;
  const QueryResponse two = service.Execute(query);
  EXPECT_FALSE(two.cache_hit);
  ASSERT_TRUE(two.result->ok) << two.result->error;
  EXPECT_EQ(two.result->tuples.size(), 1u);
  EXPECT_GT(service.cache().invalidations(), 0u);
}

TEST(JoinServiceTest, OrderHintStaysOutOfTheCacheKeyButReachesTheEngine) {
  JoinService service;
  RegisterRandomTriangle(&service, /*tuples=*/30, /*d=*/5, /*seed=*/7);
  const QueryRequest plain = Triangle(EngineKind::kTetrisPreloaded);
  ASSERT_TRUE(service.Execute(plain).result->ok);

  // An order hint steers traversal, never the tuple set — so it is
  // deliberately NOT part of the key and hits the plain entry.
  QueryRequest hinted = plain;
  hinted.order = {2, 0, 1};
  const QueryResponse hit = service.Execute(hinted);
  EXPECT_TRUE(hit.cache_hit);

  // Off the cache path the hint reaches the engine, including its
  // validation: a non-permutation is a per-query error.
  QueryRequest bad = hinted;
  bad.use_cache = false;
  bad.order = {0, 0, 1};
  const QueryResponse rejected = service.Execute(bad);
  EXPECT_FALSE(rejected.result->ok);
  EXPECT_NE(rejected.result->error.find("order"), std::string::npos)
      << rejected.result->error;
  // And a valid hint produces the same tuples as no hint.
  QueryRequest good = hinted;
  good.use_cache = false;
  QueryRequest base = plain;
  base.use_cache = false;
  EXPECT_EQ(service.Execute(good).result->tuples,
            service.Execute(base).result->tuples);
}

TEST(JoinServiceTest, PerQueryErrorsDoNotPoisonTheService) {
  JoinService service;
  RegisterRandomTriangle(&service, /*tuples=*/20, /*d=*/5, /*seed=*/11);
  QueryRequest unknown;
  unknown.relations = {"R", "Nope"};
  const QueryResponse bad = service.Execute(unknown);
  ASSERT_NE(bad.result, nullptr);
  EXPECT_FALSE(bad.result->ok);
  EXPECT_FALSE(bad.rejected);
  EXPECT_NE(bad.result->error.find("unknown relation 'Nope'"),
            std::string::npos)
      << bad.result->error;

  QueryRequest empty;
  EXPECT_FALSE(service.Execute(empty).result->ok);

  // Failures never land in the cache and never block later queries.
  EXPECT_TRUE(service.Execute(Triangle(EngineKind::kLeapfrog)).result->ok);
  EXPECT_EQ(service.inflight(), 0u);
}

TEST(JoinServiceTest, DeadlineExceededIsAPerQueryError) {
  ServiceOptions options;
  options.default_deadline_ms = 1e-6;  // effectively already expired
  JoinService service(options);
  RegisterRandomTriangle(&service, /*tuples=*/50, /*d=*/5, /*seed=*/13);

  // The service default applies when the request carries none.
  const QueryResponse expired =
      service.Execute(Triangle(EngineKind::kTetrisPreloaded));
  ASSERT_NE(expired.result, nullptr);
  EXPECT_FALSE(expired.result->ok);
  EXPECT_NE(expired.result->error.find("deadline exceeded"),
            std::string::npos)
      << expired.result->error;
  EXPECT_FALSE(expired.rejected);  // admitted, then abandoned

  // The failure was not cached: the same query fails again instead of
  // being served a cached error.
  const QueryResponse again =
      service.Execute(Triangle(EngineKind::kTetrisPreloaded));
  EXPECT_FALSE(again.result->ok);
  EXPECT_FALSE(again.cache_hit);

  // deadline_ms = 0 opts out of the default; a generous explicit
  // deadline also passes. Both still produce correct tuples.
  QueryRequest no_deadline = Triangle(EngineKind::kTetrisPreloaded);
  no_deadline.deadline_ms = 0;
  const QueryResponse ok = service.Execute(no_deadline);
  ASSERT_TRUE(ok.result->ok) << ok.result->error;
  QueryRequest generous = Triangle(EngineKind::kTetrisPreloaded);
  generous.deadline_ms = 60000;
  const QueryResponse also_ok = service.Execute(generous);
  // (cache hit or fresh run — either way the deadline did not fire)
  ASSERT_TRUE(also_ok.result->ok) << also_ok.result->error;
  EXPECT_EQ(also_ok.result->tuples, ok.result->tuples);

  // With the ok result cached, even a default-deadline query succeeds:
  // the hit path never touches the engine, so there is nothing to
  // abandon. Serving under deadline pressure is exactly what the cache
  // is for.
  const QueryResponse served =
      service.Execute(Triangle(EngineKind::kTetrisPreloaded));
  EXPECT_TRUE(served.cache_hit);
  EXPECT_TRUE(served.result->ok);
}

TEST(JoinServiceTest, AdmissionRejectsOverTheInflightLimit) {
  ServiceOptions options;
  options.max_inflight = 1;
  JoinService service(options);
  // Big enough that the nested-loop run holds its admission slot for a
  // while (~10^7 pair probes); the probe thread fires rejections into
  // that window.
  RegisterRandomTriangle(&service, /*tuples=*/3000, /*d=*/12, /*seed=*/17);

  QueryRequest slow = Triangle(EngineKind::kPairwiseNestedLoop);
  slow.use_cache = false;
  std::atomic<bool> done{false};
  std::thread worker([&]() {
    const QueryResponse r = service.Execute(slow);
    EXPECT_TRUE(r.result->ok) << r.result->error;
    EXPECT_FALSE(r.rejected);
    done.store(true);
  });

  bool saw_rejection = false;
  while (!done.load() && !saw_rejection) {
    if (service.inflight() == 0) continue;  // worker not admitted yet
    QueryRequest probe = Triangle(EngineKind::kTetrisPreloaded);
    const QueryResponse r = service.Execute(probe);
    if (r.rejected) {
      saw_rejection = true;
      EXPECT_FALSE(r.result->ok);
      EXPECT_NE(r.result->error.find("admission rejected"),
                std::string::npos)
          << r.result->error;
    }
  }
  worker.join();
  EXPECT_TRUE(saw_rejection);
  EXPECT_GT(service.rejected(), 0u);

  // The slot drains with the query: the same probe is admitted now.
  EXPECT_EQ(service.inflight(), 0u);
  EXPECT_FALSE(service.Execute(Triangle(EngineKind::kTetrisPreloaded))
                   .rejected);
  EXPECT_GT(service.admitted(), 0u);
}

TEST(JoinServiceTest, QueuedQueriesWaitForASlotInsteadOfRejecting) {
  ServiceOptions options;
  options.max_inflight = 1;
  options.max_queued = 2;
  JoinService service(options);
  RegisterRandomTriangle(&service, /*tuples=*/2000, /*d=*/12, /*seed=*/29);

  QueryRequest slow = Triangle(EngineKind::kPairwiseNestedLoop);
  slow.use_cache = false;
  std::thread worker([&]() {
    const QueryResponse r = service.Execute(slow);
    EXPECT_TRUE(r.result->ok) << r.result->error;
  });
  while (service.inflight() == 0) std::this_thread::yield();

  // This probe lands while the slot is held: it queues (never a
  // rejection) and completes once the slow query drains.
  const QueryResponse probe =
      service.Execute(Triangle(EngineKind::kTetrisPreloaded));
  worker.join();
  EXPECT_FALSE(probe.rejected);
  ASSERT_TRUE(probe.result->ok) << probe.result->error;
  // `queued` is true iff the probe actually waited — it raced the slow
  // query's completion, so assert via the counter-consistency instead:
  // a queued wait was recorded exactly when the response says so.
  EXPECT_EQ(service.queued() > 0, probe.queued);
  EXPECT_EQ(service.rejected(), 0u);
}

TEST(JoinServiceTest, QueuedDeadlineExpiresAsARejection) {
  ServiceOptions options;
  options.max_inflight = 1;
  options.max_queued = 2;
  JoinService service(options);
  RegisterRandomTriangle(&service, /*tuples=*/2500, /*d=*/12, /*seed=*/31);

  QueryRequest slow = Triangle(EngineKind::kPairwiseNestedLoop);
  slow.use_cache = false;
  std::thread worker([&]() {
    const QueryResponse r = service.Execute(slow);
    EXPECT_TRUE(r.result->ok) << r.result->error;
  });
  while (service.inflight() == 0) std::this_thread::yield();

  // While the slot is held, a tightly-deadlined probe queues and then
  // expires in the queue rather than blocking forever. (If the slow
  // query finishes first the probe just runs — accept either, but a
  // rejection must carry the deadline message.)
  QueryRequest probe = Triangle(EngineKind::kTetrisPreloaded);
  probe.deadline_ms = 5;
  const QueryResponse r = service.Execute(probe);
  worker.join();
  if (r.rejected) {
    EXPECT_TRUE(r.queued);
    EXPECT_NE(r.result->error.find("deadline expired"), std::string::npos)
        << r.result->error;
  }
  EXPECT_EQ(service.inflight(), 0u);
  // The drained slot admits the next query normally.
  EXPECT_FALSE(service.Execute(Triangle(EngineKind::kTetrisPreloaded))
                   .rejected);
}

TEST(JoinServiceTest, ExpensiveQueriesShedByPredictedCostWhenQueuing) {
  ServiceOptions options;
  options.max_inflight = 1;
  options.max_queued = 4;
  options.shed_cost_bytes = 1;  // every real query predicts above this
  JoinService service(options);
  RegisterRandomTriangle(&service, /*tuples=*/3000, /*d=*/12, /*seed=*/37);

  QueryRequest slow = Triangle(EngineKind::kPairwiseNestedLoop);
  slow.use_cache = false;
  std::atomic<bool> done{false};
  std::thread worker([&]() {
    const QueryResponse r = service.Execute(slow);
    EXPECT_TRUE(r.result->ok) << r.result->error;
    done.store(true);
  });

  bool saw_shed = false;
  while (!done.load() && !saw_shed) {
    if (service.inflight() == 0) continue;  // worker not admitted yet
    const QueryResponse r =
        service.Execute(Triangle(EngineKind::kTetrisPreloaded));
    if (r.rejected) {
      saw_shed = true;
      EXPECT_NE(r.result->error.find("admission shed"), std::string::npos)
          << r.result->error;
      EXPECT_FALSE(r.queued);  // shed happens before the wait, not after
    }
  }
  worker.join();
  EXPECT_TRUE(saw_shed);
  EXPECT_GT(service.shed(), 0u);
  // With the slot free, the same "expensive" query is admitted — cost
  // only sheds queries that would otherwise have to queue.
  EXPECT_FALSE(service.Execute(Triangle(EngineKind::kTetrisPreloaded))
                   .rejected);
}

TEST(JoinServiceTest, ZeroCacheBytesDisablesCaching) {
  ServiceOptions options;
  options.cache_bytes = 0;
  JoinService service(options);
  RegisterRandomTriangle(&service, /*tuples=*/30, /*d=*/5, /*seed=*/19);
  const QueryRequest query = Triangle(EngineKind::kTetrisPreloaded);
  const QueryResponse first = service.Execute(query);
  const QueryResponse second = service.Execute(query);
  ASSERT_TRUE(first.result->ok) << first.result->error;
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(first.result->tuples, second.result->tuples);
  EXPECT_EQ(service.cache().entries(), 0u);
}

TEST(JoinServiceTest, OneRowAppendPromotesIndexesWithZeroRebuilds) {
  // The rebuild-free maintenance contract (index/sorted_index.h): a
  // 1-row append promotes every cached index of the mutated relation to
  // the new epoch with a delta overlay — re-serving a cache-miss query
  // afterwards performs ZERO full SortedIndex builds.
  JoinService service;
  RegisterRandomTriangle(&service, /*tuples=*/60, /*d=*/5, /*seed=*/11);
  QueryRequest query = Triangle(EngineKind::kTetrisPreloaded);
  query.depth = 6;  // stable across the append

  const QueryResponse cold = service.Execute(query);
  ASSERT_TRUE(cold.result->ok) << cold.result->error;
  const IndexCache& ix = service.registry().index_cache();
  const size_t builds_before = ix.builds();
  const size_t promotes_before = ix.promotes();
  EXPECT_GT(builds_before, 0u);

  // Append one genuinely new row to S (an effective, non-noop delta).
  Tuple row{31, 31};
  {
    const auto snap = service.registry().Snap();
    while (snap.Find("S")->rel->Contains(row)) --row[1];
  }
  std::string error;
  ASSERT_TRUE(service.AppendRows("S", {row}, &error)) << error;

  // The mutation itself performed no builds, only promotions (S had at
  // least its default-layout index cached).
  EXPECT_EQ(ix.builds(), builds_before);
  EXPECT_GE(ix.promotes(), promotes_before + 1);
  EXPECT_EQ(ix.compactions(), 0u);  // 1 overlay row is far below threshold
  // The promoted index pins the retired version's buffer: it survives
  // the purge until its cache entry dies.
  service.registry().PurgeRetired();
  EXPECT_GE(service.registry().retired(), 1u);

  // Re-serve as a cache miss (use_cache=false forces the full engine
  // path through RunBatch and the index cache): still zero builds — R
  // and T hit their unchanged entries, S hits its promoted overlay.
  QueryRequest miss = query;
  miss.use_cache = false;
  const QueryResponse reserved = service.Execute(miss);
  ASSERT_TRUE(reserved.result->ok) << reserved.result->error;
  EXPECT_FALSE(reserved.cache_hit);
  EXPECT_EQ(ix.builds(), builds_before);

  // And the overlay-served result agrees with the service's own
  // cached/patched answer for the new epoch.
  const QueryResponse patched = service.Execute(query);
  ASSERT_TRUE(patched.result->ok) << patched.result->error;
  EXPECT_EQ(reserved.result->tuples, patched.result->tuples);

  // Dropping the promoted entries releases the pin and the retired
  // version drains.
  service.registry().index_cache().Clear();
  service.registry().PurgeRetired();
  EXPECT_EQ(service.registry().retired(), 0u);
}

TEST(JoinServiceTest, SnapshotsStayConsistentUnderConcurrentMutations) {
  // A writer alternates replace/append on S while readers execute
  // cached and uncached triangle queries: every admitted query must
  // complete ok over SOME pinned snapshot (never torn state, never a
  // stale cache entry — the tuple count always matches one of the
  // versions), and per-reader epochs never go backwards.
  JoinService service;
  RegisterRandomTriangle(&service, /*tuples=*/60, /*d=*/5, /*seed=*/23);
  std::atomic<bool> readers_done{false};
  std::thread writer([&]() {
    // Mutate until every reader finished, so the mutation stream spans
    // the readers' whole lifetime no matter how the scheduler slices
    // the threads.
    for (int k = 0; !readers_done.load(); ++k) {
      std::string error;
      if (k % 2 == 0) {
        EXPECT_TRUE(service.Replace(
            RandomRelation("S", {"B", "C"}, 60, 5,
                           static_cast<uint64_t>(100 + k)), &error))
            << error;
      } else {
        EXPECT_TRUE(service.Append(
            "S", {{static_cast<uint64_t>(k % 32), 1}}, &error))
            << error;
      }
    }
  });

  std::vector<std::thread> readers;
  std::atomic<size_t> queries{0};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r]() {
      uint64_t last_epoch = 0;
      for (int i = 0; i < 40; ++i) {
        QueryRequest query = Triangle(r == 0
                                          ? EngineKind::kTetrisPreloaded
                                          : EngineKind::kGenericJoin);
        query.use_cache = (i % 2) == 0;
        const QueryResponse resp = service.Execute(query);
        ASSERT_NE(resp.result, nullptr);
        EXPECT_TRUE(resp.result->ok) << resp.result->error;
        EXPECT_GE(resp.epoch, last_epoch);
        last_epoch = resp.epoch;
        queries.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  readers_done.store(true);
  writer.join();
  EXPECT_EQ(queries.load(), 80u);
  EXPECT_EQ(service.inflight(), 0u);
  // With the service idle, the retired backlog drains completely.
  service.registry().PurgeRetired();
  EXPECT_EQ(service.registry().retired(), 0u);
}

}  // namespace
}  // namespace tetris
