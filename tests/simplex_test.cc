#include "util/simplex.h"

#include <gtest/gtest.h>

namespace tetris {
namespace {

using Status = LpResult::Status;

TEST(Simplex, TrivialEmpty) {
  auto r = SolveMinCoverLp({}, {}, {1.0, 2.0});
  EXPECT_EQ(r.status, Status::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(Simplex, SingleConstraint) {
  // min x st x >= 1 -> x = 1.
  auto r = SolveMinCoverLp({{1.0}}, {1.0}, {1.0});
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-7);
  EXPECT_NEAR(r.x[0], 1.0, 1e-7);
}

TEST(Simplex, TriangleFractionalCover) {
  // Triangle query hypergraph: vertices A,B,C; edges AB, BC, AC.
  // min x1+x2+x3 s.t. each vertex covered; optimum 3/2 (all x=1/2).
  std::vector<std::vector<double>> a = {
      {1, 0, 1},  // A in AB, AC
      {1, 1, 0},  // B in AB, BC
      {0, 1, 1},  // C in BC, AC
  };
  auto r = SolveMinCoverLp(a, {1, 1, 1}, {1, 1, 1});
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 1.5, 1e-7);
}

TEST(Simplex, PathCoverIsInteger) {
  // Path A-B-C with edges AB, BC: optimum 2? No: vertex B covered by both;
  // need x_AB >= 1 (A) and x_BC >= 1 (C) -> objective 2.
  std::vector<std::vector<double>> a = {
      {1, 0},  // A
      {1, 1},  // B
      {0, 1},  // C
  };
  auto r = SolveMinCoverLp(a, {1, 1, 1}, {1, 1});
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(Simplex, WeightedObjective) {
  // Same triangle but one relation is free: put all weight there.
  std::vector<std::vector<double>> a = {
      {1, 0, 1},
      {1, 1, 0},
      {0, 1, 1},
  };
  auto r = SolveMinCoverLp(a, {1, 1, 1}, {0.0, 1.0, 1.0});
  ASSERT_EQ(r.status, Status::kOptimal);
  // x_AB = 1 covers A,B at cost 0; C needs 1 more from BC or AC at cost 1.
  EXPECT_NEAR(r.objective, 1.0, 1e-7);
}

TEST(Simplex, InfeasibleWhenVertexUncoverable) {
  // A vertex that appears in no edge cannot be covered.
  std::vector<std::vector<double>> a = {
      {1.0},
      {0.0},
  };
  auto r = SolveMinCoverLp(a, {1, 1}, {1.0});
  EXPECT_EQ(r.status, Status::kInfeasible);
}

TEST(Simplex, LooseConstraintsAllowZero) {
  // b = 0: x = 0 is optimal.
  auto r = SolveMinCoverLp({{1.0, 1.0}}, {0.0}, {1.0, 1.0});
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(Simplex, FourCycleFractionalCoverIsTwo) {
  // 4-cycle A-B-C-D: edges AB, BC, CD, DA. ρ* = 2.
  std::vector<std::vector<double>> a = {
      {1, 0, 0, 1},  // A
      {1, 1, 0, 0},  // B
      {0, 1, 1, 0},  // C
      {0, 0, 1, 1},  // D
  };
  auto r = SolveMinCoverLp(a, {1, 1, 1, 1}, {1, 1, 1, 1});
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(Simplex, FiveCycleFractionalCoverIsHalfN) {
  // Odd cycle C5: ρ* = 5/2.
  std::vector<std::vector<double>> a(5, std::vector<double>(5, 0.0));
  for (int v = 0; v < 5; ++v) {
    // vertex v belongs to edges (v-1, v) and (v, v+1) — index edges by
    // their first endpoint.
    a[v][v] = 1.0;
    a[v][(v + 4) % 5] = 1.0;
  }
  auto r = SolveMinCoverLp(a, {1, 1, 1, 1, 1}, {1, 1, 1, 1, 1});
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 2.5, 1e-7);
}

}  // namespace
}  // namespace tetris
