#include "relation/relation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "relation/relation_view.h"
#include "util/rng.h"

namespace tetris {
namespace {

TEST(Relation, MakeCanonicalizes) {
  Relation r = Relation::Make("R", {"A", "B"},
                              {{3, 1}, {1, 3}, {3, 1}, {0, 0}});
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.row(0).ToTuple(), (Tuple{0, 0}));
  EXPECT_EQ(r.row(1).ToTuple(), (Tuple{1, 3}));
  EXPECT_EQ(r.row(2).ToTuple(), (Tuple{3, 1}));
}

TEST(Relation, ContainsUsesBinarySearch) {
  Relation r = Relation::Make("R", {"A", "B"}, {{1, 2}, {3, 4}});
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_TRUE(r.Contains({3, 4}));
  EXPECT_FALSE(r.Contains({1, 4}));
  EXPECT_FALSE(r.Contains({0, 0}));
}

TEST(Relation, AttrIndex) {
  Relation r("S", {"B", "C", "A"});
  EXPECT_EQ(r.AttrIndex("B"), 0);
  EXPECT_EQ(r.AttrIndex("C"), 1);
  EXPECT_EQ(r.AttrIndex("A"), 2);
  EXPECT_EQ(r.AttrIndex("Z"), -1);
}

TEST(Relation, MaxValue) {
  Relation r = Relation::Make("R", {"A"}, {{5}, {17}, {2}});
  EXPECT_EQ(r.MaxValue(), 17u);
  Relation empty("E", {"A"});
  EXPECT_EQ(empty.MaxValue(), 0u);
}

TEST(Relation, IncrementalAddThenCanonicalize) {
  Relation r("R", {"A", "B"});
  r.Add({2, 2});
  r.Add({1, 1});
  r.Add({2, 2});
  r.Canonicalize();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 1}));
}

TEST(Relation, FlatBufferIsRowMajorStrided) {
  Relation r = Relation::Make("R", {"A", "B", "C"}, {{1, 2, 3}, {4, 5, 6}});
  ASSERT_EQ(r.raw().size(), 6u);
  EXPECT_EQ(r.raw(), (std::vector<uint64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(r.row(1)[0], 4u);
  EXPECT_EQ(r.row(1).data(), r.raw().data() + 3);
}

TEST(Relation, RowsRangeAndToTuplesRoundTrip) {
  std::vector<Tuple> in = {{2, 9}, {1, 1}, {7, 0}};
  Relation r = Relation::Make("R", {"A", "B"}, in);
  std::sort(in.begin(), in.end());
  EXPECT_EQ(r.ToTuples(), in);
  size_t i = 0;
  for (TupleRef t : r.rows()) {
    EXPECT_EQ(t.ToTuple(), in[i]);
    ++i;
  }
  EXPECT_EQ(i, in.size());
}

TEST(Relation, TupleRefComparisons) {
  Relation r = Relation::Make("R", {"A", "B"}, {{1, 2}, {1, 3}});
  EXPECT_TRUE(r.row(0) < r.row(1));
  EXPECT_FALSE(r.row(1) < r.row(0));
  EXPECT_TRUE(r.row(0) == r.row(0));
  EXPECT_FALSE(r.row(0) == r.row(1));
  Tuple owned = r.row(1);  // implicit materialization
  EXPECT_EQ(owned, (Tuple{1, 3}));
}

// Differential: flat-buffer canonicalize/Contains against the obvious
// vector<Tuple> model on random multisets with duplicates.
TEST(Relation, RandomizedCanonicalizeMatchesTupleModel) {
  Rng rng(321);
  for (int round = 0; round < 30; ++round) {
    const int k = 1 + static_cast<int>(rng.Below(4));
    const size_t n = rng.Below(60);
    std::vector<Tuple> model;
    Relation r("R", std::vector<std::string>(k, "x"));
    for (size_t i = 0; i < n; ++i) {
      Tuple t(k);
      for (int c = 0; c < k; ++c) t[c] = rng.Below(8);  // force duplicates
      model.push_back(t);
      r.Add(t);
    }
    std::sort(model.begin(), model.end());
    model.erase(std::unique(model.begin(), model.end()), model.end());
    r.Canonicalize();
    EXPECT_EQ(r.ToTuples(), model);
    for (const Tuple& t : model) EXPECT_TRUE(r.Contains(t));
    Tuple probe(k, 9);  // outside the value range above
    EXPECT_FALSE(r.Contains(probe));
  }
}

TEST(RelationView, MaterializeGathersRowsFromFlatBase) {
  Relation base =
      Relation::Make("R", {"A", "B"}, {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  std::vector<size_t> rows = {1, 3};
  RelationView view(&base, &rows);
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.tuple(0).ToTuple(), (Tuple{2, 3}));
  Relation m = view.Materialize();
  EXPECT_EQ(m.ToTuples(), (std::vector<Tuple>{{2, 3}, {6, 7}}));
  EXPECT_EQ(view.PayloadBytes(), 2u * 2u * sizeof(uint64_t));
}

}  // namespace
}  // namespace tetris
