#include "relation/relation.h"

#include <gtest/gtest.h>

namespace tetris {
namespace {

TEST(Relation, MakeCanonicalizes) {
  Relation r = Relation::Make("R", {"A", "B"},
                              {{3, 1}, {1, 3}, {3, 1}, {0, 0}});
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.tuples()[0], (Tuple{0, 0}));
  EXPECT_EQ(r.tuples()[1], (Tuple{1, 3}));
  EXPECT_EQ(r.tuples()[2], (Tuple{3, 1}));
}

TEST(Relation, ContainsUsesBinarySearch) {
  Relation r = Relation::Make("R", {"A", "B"}, {{1, 2}, {3, 4}});
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_TRUE(r.Contains({3, 4}));
  EXPECT_FALSE(r.Contains({1, 4}));
  EXPECT_FALSE(r.Contains({0, 0}));
}

TEST(Relation, AttrIndex) {
  Relation r("S", {"B", "C", "A"});
  EXPECT_EQ(r.AttrIndex("B"), 0);
  EXPECT_EQ(r.AttrIndex("C"), 1);
  EXPECT_EQ(r.AttrIndex("A"), 2);
  EXPECT_EQ(r.AttrIndex("Z"), -1);
}

TEST(Relation, MaxValue) {
  Relation r = Relation::Make("R", {"A"}, {{5}, {17}, {2}});
  EXPECT_EQ(r.MaxValue(), 17u);
  Relation empty("E", {"A"});
  EXPECT_EQ(empty.MaxValue(), 0u);
}

TEST(Relation, IncrementalAddThenCanonicalize) {
  Relation r("R", {"A", "B"});
  r.Add({2, 2});
  r.Add({1, 1});
  r.Add({2, 2});
  r.Canonicalize();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 1}));
}

}  // namespace
}  // namespace tetris
