#include "index/index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "index/dyadic_index.h"
#include "index/kdtree_index.h"
#include "index/multi_index.h"
#include "index/rtree_index.h"
#include "index/sorted_index.h"
#include "util/rng.h"

namespace tetris {
namespace {

// The paper's Figure 1 / Figure 3 relation:
// R(A,B) = {3}x{1,3,5,7} ∪ {1,3,5,7}x{3} over d = 3 (values 0..7).
Relation PaperCrossRelation() {
  std::vector<Tuple> ts;
  for (uint64_t v : {1, 3, 5, 7}) {
    ts.push_back({3, v});
    ts.push_back({v, 3});
  }
  return Relation::Make("R", {"A", "B"}, std::move(ts));
}

// Exhaustively checks that the union of `gaps` equals the complement of
// `rel` in the full k-dimensional grid.
void ExpectGapsAreExactComplement(const Relation& rel,
                                  const std::vector<DyadicBox>& gaps, int d) {
  const int k = rel.arity();
  const uint64_t dom = uint64_t{1} << d;
  Tuple t(k, 0);
  for (;;) {
    bool covered = false;
    for (const auto& g : gaps) {
      if (g.ContainsPoint(t, d)) {
        covered = true;
        break;
      }
    }
    EXPECT_EQ(covered, !rel.Contains(t)) << "at tuple " << t[0];
    int i = k - 1;
    while (i >= 0 && ++t[i] == dom) t[i--] = 0;
    if (i < 0) break;
  }
}

TEST(SortedIndex, PaperFigure1GapsAreExact) {
  Relation r = PaperCrossRelation();
  SortedIndex ix(r, {0, 1}, 3);  // (A,B) order
  std::vector<DyadicBox> gaps;
  ix.AllGaps(&gaps);
  ExpectGapsAreExactComplement(r, gaps, 3);
}

TEST(SortedIndex, ReverseOrderGapsAreExactToo) {
  Relation r = PaperCrossRelation();
  SortedIndex ix(r, {1, 0}, 3);  // (B,A) order, Figure 3a
  std::vector<DyadicBox> gaps;
  ix.AllGaps(&gaps);
  ExpectGapsAreExactComplement(r, gaps, 3);
}

TEST(SortedIndex, ProbePresentTupleYieldsNoGap) {
  Relation r = PaperCrossRelation();
  SortedIndex ix(r, 3);
  std::vector<DyadicBox> gaps;
  ix.GapsContaining({3, 5}, &gaps);
  EXPECT_TRUE(gaps.empty());
  EXPECT_TRUE(ix.Contains({3, 5}));
}

TEST(SortedIndex, ProbeMissingTupleYieldsContainingGap) {
  Relation r = PaperCrossRelation();
  SortedIndex ix(r, 3);
  std::vector<DyadicBox> gaps;
  ix.GapsContaining({2, 6}, &gaps);  // A=2 is between keys 1 and 3
  ASSERT_FALSE(gaps.empty());
  bool contains_probe = false;
  for (const auto& g : gaps) {
    if (g.ContainsPoint({2, 6}, 3)) contains_probe = true;
    // No gap may cover a real tuple.
    for (TupleRef t : r.rows()) {
      EXPECT_FALSE(g.ContainsPoint(t.data(), 3)) << g.ToString();
    }
  }
  EXPECT_TRUE(contains_probe);
}

TEST(SortedIndex, SecondLevelBandGap) {
  Relation r = PaperCrossRelation();
  SortedIndex ix(r, 3);
  std::vector<DyadicBox> gaps;
  // A=3 exists; B=4 is between keys 3 and 5 at the second level.
  ix.GapsContaining({3, 4}, &gaps);
  ASSERT_EQ(gaps.size(), 1u);  // band [4,4] is a single dyadic interval
  EXPECT_EQ(gaps[0][0], DyadicInterval::Unit(3, 3));
  EXPECT_EQ(gaps[0][1], DyadicInterval::Unit(4, 3));
}

TEST(SortedIndex, EmptyRelationHasUniversalGap) {
  Relation r("E", {"A", "B"});
  SortedIndex ix(r, 3);
  std::vector<DyadicBox> gaps;
  ix.AllGaps(&gaps);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], DyadicBox::Universal(2));
  gaps.clear();
  ix.GapsContaining({0, 0}, &gaps);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], DyadicBox::Universal(2));
}

TEST(DyadicTreeIndex, PaperFigure3bGapsAreExact) {
  Relation r = PaperCrossRelation();
  DyadicTreeIndex ix(r, 3);
  std::vector<DyadicBox> gaps;
  ix.AllGaps(&gaps);
  ExpectGapsAreExactComplement(r, gaps, 3);
}

TEST(DyadicTreeIndex, BeatsBtreeOnMsbComplementRelation) {
  // Paper §3.4 / Figure 5, footnote 9: for R = {(a,b) : msb(a) != msb(b)}
  // the quad-tree stores the two gap quadrants <0,0> and <1,1> directly,
  // while a B-tree needs ~2^(d-1) band gaps per quadrant.
  const int d = 5;
  const uint64_t half = uint64_t{1} << (d - 1);
  std::vector<Tuple> ts;
  for (uint64_t a = 0; a < (uint64_t{1} << d); ++a) {
    for (uint64_t b = 0; b < (uint64_t{1} << d); ++b) {
      if ((a >> (d - 1)) != (b >> (d - 1))) ts.push_back({a, b});
    }
  }
  Relation r = Relation::Make("R", {"A", "B"}, std::move(ts));
  DyadicTreeIndex qt(r, d);
  std::vector<DyadicBox> qt_gaps;
  qt.AllGaps(&qt_gaps);
  ASSERT_EQ(qt_gaps.size(), 2u);
  ExpectGapsAreExactComplement(r, qt_gaps, d);
  SortedIndex bt(r, d);
  std::vector<DyadicBox> bt_gaps;
  bt.AllGaps(&bt_gaps);
  ExpectGapsAreExactComplement(r, bt_gaps, d);
  EXPECT_GE(bt_gaps.size(), half);  // one band per a-value at least
}

TEST(DyadicTreeIndex, ProbeReturnsMaximalEmptyCell) {
  Relation r = PaperCrossRelation();
  DyadicTreeIndex ix(r, 3);
  std::vector<DyadicBox> gaps;
  ix.GapsContaining({0, 0}, &gaps);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_TRUE(gaps[0].ContainsPoint({0, 0}, 3));
  // Maximality: the parent cell (one level up) must be occupied.
  EXPECT_GT(gaps[0][0].len, 0);
  for (TupleRef t : r.rows()) {
    EXPECT_FALSE(gaps[0].ContainsPoint(t.data(), 3));
  }
}

TEST(DyadicTreeIndex, ContainsMatchesRelation) {
  Relation r = PaperCrossRelation();
  DyadicTreeIndex ix(r, 3);
  for (uint64_t a = 0; a < 8; ++a) {
    for (uint64_t b = 0; b < 8; ++b) {
      EXPECT_EQ(ix.Contains({a, b}), r.Contains({a, b}));
    }
  }
}

TEST(KdTreeIndex, GapsAreExactOnPaperRelation) {
  Relation r = PaperCrossRelation();
  for (size_t cap : {1u, 4u, 16u}) {
    KdTreeIndex ix(r, 3, cap);
    std::vector<DyadicBox> gaps;
    ix.AllGaps(&gaps);
    ExpectGapsAreExactComplement(r, gaps, 3);
  }
}

TEST(KdTreeIndex, ProbeReturnsContainingGap) {
  Relation r = PaperCrossRelation();
  KdTreeIndex ix(r, 3, 2);
  for (uint64_t a = 0; a < 8; ++a) {
    for (uint64_t b = 0; b < 8; ++b) {
      std::vector<DyadicBox> gaps;
      ix.GapsContaining({a, b}, &gaps);
      EXPECT_EQ(gaps.empty(), r.Contains({a, b}));
      for (const auto& g : gaps) {
        EXPECT_TRUE(g.ContainsPoint({a, b}, 3));
        for (TupleRef t : r.rows()) {
          EXPECT_FALSE(g.ContainsPoint(t.data(), 3));
        }
      }
    }
  }
}

TEST(KdTreeIndex, EmptyRelationIsOneGap) {
  Relation e("E", {"A", "B", "C"});
  KdTreeIndex ix(e, 4);
  std::vector<DyadicBox> gaps;
  ix.AllGaps(&gaps);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], DyadicBox::Universal(3));
  EXPECT_FALSE(ix.Contains({0, 0, 0}));
}

TEST(KdTreeIndex, LargerLeavesGiveFewerNodes) {
  Rng rng(3);
  std::vector<Tuple> ts;
  for (int i = 0; i < 200; ++i) ts.push_back({rng.Below(64), rng.Below(64)});
  Relation r = Relation::Make("R", {"A", "B"}, std::move(ts));
  KdTreeIndex fine(r, 6, 1), coarse(r, 6, 16);
  EXPECT_GT(fine.node_count(), coarse.node_count());
}

TEST(RTreeIndex, GapsExactOnPaperRelation) {
  Relation r = PaperCrossRelation();
  for (size_t cap : {1u, 3u, 8u}) {
    RTreeIndex ix(r, 3, cap);
    std::vector<DyadicBox> gaps;
    ix.AllGaps(&gaps);
    ExpectGapsAreExactComplement(r, gaps, 3);
  }
}

TEST(RTreeIndex, ClusteredDataGivesFewCoarseGaps) {
  // Two dense clusters in opposite corners of a d=8 square: the space
  // between the MBRs is a handful of coarse gaps, far fewer than the
  // per-tuple bands of a B-tree.
  std::vector<Tuple> ts;
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t b = 0; b < 16; ++b) {
      ts.push_back({a, b});
      ts.push_back({240 + a, 240 + b});
    }
  }
  Relation r = Relation::Make("R", {"A", "B"}, std::move(ts));
  RTreeIndex rt(r, 8, 256);
  std::vector<DyadicBox> rt_gaps;
  rt.AllGaps(&rt_gaps);
  ExpectGapsAreExactComplement(r, rt_gaps, 8);
  SortedIndex bt(r, 8);
  std::vector<DyadicBox> bt_gaps;
  bt.AllGaps(&bt_gaps);
  EXPECT_LT(rt_gaps.size(), bt_gaps.size());
}

TEST(RTreeIndex, ProbeFindsSingleContainingGap) {
  Relation r = PaperCrossRelation();
  RTreeIndex ix(r, 3, 4);
  for (uint64_t a = 0; a < 8; ++a) {
    for (uint64_t b = 0; b < 8; ++b) {
      std::vector<DyadicBox> gaps;
      ix.GapsContaining({a, b}, &gaps);
      EXPECT_EQ(gaps.empty(), r.Contains({a, b}));
      if (!gaps.empty()) {
        ASSERT_EQ(gaps.size(), 1u);
        EXPECT_TRUE(gaps[0].ContainsPoint({a, b}, 3));
        for (TupleRef t : r.rows()) {
          EXPECT_FALSE(gaps[0].ContainsPoint(t.data(), 3));
        }
      }
    }
  }
}

TEST(MultiIndex, UnionsGapsFromAllMembers) {
  Relation r = PaperCrossRelation();
  std::vector<std::unique_ptr<Index>> v;
  v.push_back(std::make_unique<SortedIndex>(r, std::vector<int>{0, 1}, 3));
  v.push_back(std::make_unique<SortedIndex>(r, std::vector<int>{1, 0}, 3));
  MultiIndex mi(std::move(v));
  EXPECT_EQ(mi.index_count(), 2u);
  std::vector<DyadicBox> gaps;
  mi.GapsContaining({2, 6}, &gaps);
  EXPECT_GE(gaps.size(), 2u);  // one maximal gap per member index
  std::vector<DyadicBox> all;
  mi.AllGaps(&all);
  ExpectGapsAreExactComplement(r, all, 3);
}

// Property sweep over random relations and all index types: gap boxes are
// exactly the complement, probing is consistent with membership.
struct IndexCase {
  int arity;
  int d;
  int tuples;
  uint64_t seed;
};

class IndexProperty : public ::testing::TestWithParam<IndexCase> {};

TEST_P(IndexProperty, GapsExactAndProbesConsistent) {
  const auto [k, d, n, seed] = GetParam();
  Rng rng(seed);
  std::vector<Tuple> ts;
  for (int i = 0; i < n; ++i) {
    Tuple t(k);
    for (int c = 0; c < k; ++c) t[c] = rng.Below(uint64_t{1} << d);
    ts.push_back(std::move(t));
  }
  std::vector<std::string> attrs;
  for (int c = 0; c < k; ++c) attrs.push_back("A" + std::to_string(c));
  Relation r = Relation::Make("R", attrs, std::move(ts));

  std::vector<std::unique_ptr<Index>> indexes;
  indexes.push_back(std::make_unique<SortedIndex>(r, d));
  {
    std::vector<int> rev(k);
    for (int c = 0; c < k; ++c) rev[c] = k - 1 - c;
    indexes.push_back(std::make_unique<SortedIndex>(r, rev, d));
  }
  if (k * d <= 62) {
    indexes.push_back(std::make_unique<DyadicTreeIndex>(r, d));
  }
  indexes.push_back(std::make_unique<KdTreeIndex>(r, d, 1));
  indexes.push_back(std::make_unique<KdTreeIndex>(r, d, 8));
  indexes.push_back(std::make_unique<RTreeIndex>(r, d, 1));
  indexes.push_back(std::make_unique<RTreeIndex>(r, d, 6));

  for (const auto& ix : indexes) {
    std::vector<DyadicBox> gaps;
    ix->AllGaps(&gaps);
    ExpectGapsAreExactComplement(r, gaps, d);
    // Probe random points.
    for (int i = 0; i < 100; ++i) {
      Tuple t(k);
      for (int c = 0; c < k; ++c) t[c] = rng.Below(uint64_t{1} << d);
      std::vector<DyadicBox> probe_gaps;
      ix->GapsContaining(t, &probe_gaps);
      EXPECT_EQ(ix->Contains(t), r.Contains(t)) << ix->Describe();
      EXPECT_EQ(probe_gaps.empty(), r.Contains(t)) << ix->Describe();
      if (!probe_gaps.empty()) {
        bool any_contains = false;
        for (const auto& g : probe_gaps) {
          if (g.ContainsPoint(t, d)) any_contains = true;
          for (TupleRef tu : r.rows()) {
            ASSERT_FALSE(g.ContainsPoint(tu.data(), d))
                << ix->Describe() << " gap covers a tuple";
          }
        }
        EXPECT_TRUE(any_contains) << ix->Describe();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IndexProperty,
    ::testing::Values(IndexCase{1, 4, 6, 11}, IndexCase{2, 3, 10, 22},
                      IndexCase{2, 4, 30, 33}, IndexCase{3, 3, 40, 44},
                      IndexCase{3, 2, 5, 55}, IndexCase{4, 2, 12, 66},
                      IndexCase{2, 5, 1, 77}, IndexCase{2, 3, 0, 88}));

// Differential: the pruned GapsIntersecting enumeration must equal the
// filtered full enumeration, for every index type (SortedIndex overrides
// it with a subcube-pruned walk; the others use the default filter) and
// random probe subcubes of varying coarseness.
TEST(GapsIntersecting, MatchesFilteredAllGaps) {
  Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    const int k = 2 + static_cast<int>(rng.Below(2));
    const int d = 3 + static_cast<int>(rng.Below(2));
    const int n = static_cast<int>(rng.Below(40));
    std::vector<Tuple> ts;
    for (int i = 0; i < n; ++i) {
      Tuple t(k);
      for (int c = 0; c < k; ++c) t[c] = rng.Below(uint64_t{1} << d);
      ts.push_back(std::move(t));
    }
    std::vector<std::string> attrs;
    for (int c = 0; c < k; ++c) attrs.push_back("A" + std::to_string(c));
    Relation r = Relation::Make("R", attrs, std::move(ts));

    std::vector<std::unique_ptr<Index>> indexes;
    indexes.push_back(std::make_unique<SortedIndex>(r, d));
    {
      std::vector<int> rev(k);
      for (int c = 0; c < k; ++c) rev[c] = k - 1 - c;
      indexes.push_back(std::make_unique<SortedIndex>(r, rev, d));
    }
    indexes.push_back(std::make_unique<KdTreeIndex>(r, d, 4));

    for (int probe = 0; probe < 8; ++probe) {
      DyadicBox box = DyadicBox::Universal(k);
      for (int c = 0; c < k; ++c) {
        const int len = static_cast<int>(rng.Below(d + 1));
        box[c] = {rng.Below(uint64_t{1} << len), static_cast<uint8_t>(len)};
      }
      for (const auto& ix : indexes) {
        std::vector<DyadicBox> all;
        ix->AllGaps(&all);
        std::vector<DyadicBox> expected;
        for (const DyadicBox& g : all) {
          if (box.Intersects(g)) expected.push_back(g);
        }
        std::vector<DyadicBox> pruned;
        ix->GapsIntersecting(box, &pruned);
        // Order may differ between enumeration strategies; compare sets.
        auto key = [](const DyadicBox& b) { return b.ToString(); };
        std::vector<std::string> e, p;
        for (const auto& b : expected) e.push_back(key(b));
        for (const auto& b : pruned) p.push_back(key(b));
        std::sort(e.begin(), e.end());
        std::sort(p.begin(), p.end());
        EXPECT_EQ(e, p) << ix->Describe() << " box=" << box.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace tetris
