#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/generic_join.h"
#include "baseline/leapfrog.h"
#include "baseline/pairwise_join.h"
#include "baseline/yannakakis.h"
#include "util/rng.h"

namespace tetris {
namespace {

std::vector<Tuple> Sorted(std::vector<Tuple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct Workload {
  std::vector<Relation> rels;
  JoinQuery query = JoinQuery::Build({});

  static Workload Triangle(int n_tuples, int d, uint64_t seed) {
    Workload w;
    Rng rng(seed);
    auto mk = [&](std::string n, std::vector<std::string> a) {
      std::vector<Tuple> ts;
      for (int i = 0; i < n_tuples; ++i) {
        ts.push_back({rng.Below(uint64_t{1} << d),
                      rng.Below(uint64_t{1} << d)});
      }
      return Relation::Make(std::move(n), std::move(a), std::move(ts));
    };
    w.rels.push_back(mk("R", {"A", "B"}));
    w.rels.push_back(mk("S", {"B", "C"}));
    w.rels.push_back(mk("T", {"A", "C"}));
    w.Bind();
    return w;
  }

  static Workload Path(int hops, int n_tuples, int d, uint64_t seed) {
    Workload w;
    Rng rng(seed);
    for (int h = 0; h < hops; ++h) {
      std::vector<Tuple> ts;
      for (int i = 0; i < n_tuples; ++i) {
        ts.push_back({rng.Below(uint64_t{1} << d),
                      rng.Below(uint64_t{1} << d)});
      }
      w.rels.push_back(Relation::Make(
          "R" + std::to_string(h),
          {"A" + std::to_string(h), "A" + std::to_string(h + 1)},
          std::move(ts)));
    }
    w.Bind();
    return w;
  }

  void Bind() {
    std::vector<const Relation*> ptrs;
    for (const auto& r : rels) ptrs.push_back(&r);
    query = JoinQuery::Build(ptrs);
  }
};

TEST(PairwiseJoin, AllMethodsMatchBruteForceOnTriangle) {
  Workload w = Workload::Triangle(20, 3, 1);
  auto expected = Sorted(w.query.BruteForceJoin(3));
  for (auto m : {PairwiseMethod::kNestedLoop, PairwiseMethod::kHash,
                 PairwiseMethod::kSortMerge}) {
    BaselineStats stats;
    auto out = Sorted(PairwiseJoinPlan(w.query, m, &stats));
    EXPECT_EQ(out, expected) << static_cast<int>(m);
    EXPECT_GE(stats.max_intermediate, expected.size());
  }
}

TEST(PairwiseJoin, CrossProductWhenNoSharedVars) {
  Relation r = Relation::Make("R", {"A"}, {{0}, {1}});
  Relation s = Relation::Make("S", {"B"}, {{5}, {6}, {7}});
  JoinQuery q = JoinQuery::Build({&r, &s});
  auto out = PairwiseJoinPlan(q, PairwiseMethod::kHash);
  EXPECT_EQ(out.size(), 6u);
}

TEST(Leapfrog, TriangleMatchesBruteForce) {
  Workload w = Workload::Triangle(25, 3, 2);
  auto expected = Sorted(w.query.BruteForceJoin(3));
  int64_t seeks = 0;
  auto out = Sorted(LeapfrogTriejoin(w.query, {}, &seeks));
  EXPECT_EQ(out, expected);
  EXPECT_GT(seeks, 0);
}

TEST(Leapfrog, WorksUnderAnyGao) {
  Workload w = Workload::Triangle(15, 2, 3);
  auto expected = Sorted(w.query.BruteForceJoin(2));
  std::vector<int> gao = {0, 1, 2};
  do {
    auto out = Sorted(LeapfrogTriejoin(w.query, gao));
    EXPECT_EQ(out, expected) << gao[0] << gao[1] << gao[2];
  } while (std::next_permutation(gao.begin(), gao.end()));
}

TEST(Leapfrog, EmptyRelationShortCircuits) {
  Relation r = Relation::Make("R", {"A", "B"}, {{0, 1}});
  Relation e("E", {"B", "C"});
  JoinQuery q = JoinQuery::Build({&r, &e});
  EXPECT_TRUE(LeapfrogTriejoin(q).empty());
}

TEST(GenericJoin, TriangleMatchesBruteForce) {
  Workload w = Workload::Triangle(25, 3, 4);
  auto expected = Sorted(w.query.BruteForceJoin(3));
  int64_t probes = 0;
  auto out = Sorted(GenericJoin(w.query, {}, &probes));
  EXPECT_EQ(out, expected);
  EXPECT_GT(probes, 0);
}

TEST(GenericJoin, WorksUnderAnyGao) {
  Workload w = Workload::Triangle(15, 2, 5);
  auto expected = Sorted(w.query.BruteForceJoin(2));
  std::vector<int> gao = {0, 1, 2};
  do {
    auto out = Sorted(GenericJoin(w.query, gao));
    EXPECT_EQ(out, expected);
  } while (std::next_permutation(gao.begin(), gao.end()));
}

TEST(Yannakakis, PathQueryMatches) {
  Workload w = Workload::Path(3, 30, 3, 6);
  auto expected = Sorted(w.query.BruteForceJoin(3));
  auto out = YannakakisJoin(w.query);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(Sorted(*out), expected);
}

TEST(Yannakakis, RejectsCyclicQuery) {
  Workload w = Workload::Triangle(5, 2, 7);
  EXPECT_FALSE(YannakakisJoin(w.query).has_value());
}

TEST(Yannakakis, BowtieWithUnaryRelations) {
  Relation r = Relation::Make("R", {"A"}, {{1}, {2}, {5}});
  Relation s = Relation::Make("S", {"A", "B"}, {{1, 3}, {2, 9}, {4, 4}});
  Relation t = Relation::Make("T", {"B"}, {{3}, {4}});
  JoinQuery q = JoinQuery::Build({&r, &s, &t});
  auto out = YannakakisJoin(q);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (std::vector<Tuple>{{1, 3}}));
}

TEST(Yannakakis, SemijoinsBoundIntermediates) {
  // A path query with an empty final hop: the full reducer empties
  // everything; no intermediate may exceed the input size.
  Workload w = Workload::Path(2, 50, 3, 8);
  Relation dead("D", {"A2", "A3"});
  w.rels.push_back(std::move(dead));
  w.Bind();
  BaselineStats stats;
  auto out = YannakakisJoin(w.query, &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
  EXPECT_LE(stats.max_intermediate, 50u);
}

TEST(Yannakakis, StarQuery) {
  Rng rng(9);
  std::vector<Relation> rels;
  for (int i = 0; i < 3; ++i) {
    std::vector<Tuple> ts;
    for (int j = 0; j < 20; ++j) ts.push_back({rng.Below(4), rng.Below(4)});
    rels.push_back(Relation::Make("R" + std::to_string(i),
                                  {"H", "L" + std::to_string(i)},
                                  std::move(ts)));
  }
  std::vector<const Relation*> ptrs;
  for (auto& r : rels) ptrs.push_back(&r);
  JoinQuery q = JoinQuery::Build(ptrs);
  auto expected = Sorted(q.BruteForceJoin(2));
  auto out = YannakakisJoin(q);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(Sorted(*out), expected);
}

// Cross-validation: all baselines agree with each other on random inputs.
class BaselineAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineAgreement, AllAlgorithmsAgree) {
  Workload w = Workload::Path(2, 25, 3, GetParam());
  auto expected = Sorted(w.query.BruteForceJoin(3));
  EXPECT_EQ(Sorted(PairwiseJoinPlan(w.query, PairwiseMethod::kHash)),
            expected);
  EXPECT_EQ(Sorted(PairwiseJoinPlan(w.query, PairwiseMethod::kSortMerge)),
            expected);
  EXPECT_EQ(Sorted(PairwiseJoinPlan(w.query, PairwiseMethod::kNestedLoop)),
            expected);
  EXPECT_EQ(Sorted(LeapfrogTriejoin(w.query)), expected);
  EXPECT_EQ(Sorted(GenericJoin(w.query)), expected);
  auto y = YannakakisJoin(w.query);
  ASSERT_TRUE(y.has_value());
  EXPECT_EQ(Sorted(*y), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineAgreement,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace tetris
