#include "query/hypergraph.h"

#include <gtest/gtest.h>

namespace tetris {
namespace {

Hypergraph Triangle() {
  return Hypergraph(3, {{0, 1}, {1, 2}, {0, 2}});
}
Hypergraph Path(int n) {
  std::vector<std::vector<int>> e;
  for (int i = 0; i + 1 < n; ++i) e.push_back({i, i + 1});
  return Hypergraph(n, e);
}
Hypergraph Cycle(int n) {
  std::vector<std::vector<int>> e;
  for (int i = 0; i < n; ++i) e.push_back({i, (i + 1) % n});
  return Hypergraph(n, e);
}
Hypergraph Clique(int n) {
  std::vector<std::vector<int>> e;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) e.push_back({i, j});
  }
  return Hypergraph(n, e);
}

TEST(Gyo, PathIsAcyclic) {
  for (int n = 2; n <= 6; ++n) {
    std::vector<int> order;
    EXPECT_TRUE(Path(n).GyoEliminationOrder(&order)) << n;
    EXPECT_EQ(static_cast<int>(order.size()), n);
  }
}

TEST(Gyo, TriangleIsCyclic) {
  EXPECT_FALSE(Triangle().IsAlphaAcyclic());
  EXPECT_FALSE(Cycle(4).IsAlphaAcyclic());
  EXPECT_FALSE(Cycle(5).IsAlphaAcyclic());
}

TEST(Gyo, TriangleWithCoveringEdgeIsAcyclic) {
  // Adding the edge {0,1,2} makes the triangle α-acyclic.
  Hypergraph h(3, {{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}});
  EXPECT_TRUE(h.IsAlphaAcyclic());
}

TEST(Gyo, StarIsAcyclic) {
  Hypergraph h(4, {{0, 1}, {0, 2}, {0, 3}});
  std::vector<int> order;
  EXPECT_TRUE(h.GyoEliminationOrder(&order));
}

TEST(BetaAcyclicity, KnownClassifications) {
  // Paths and stars are β-acyclic.
  EXPECT_TRUE(Path(5).IsBetaAcyclic());
  Hypergraph star(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_TRUE(star.IsBetaAcyclic());
  // A triangle with a covering edge is α- but NOT β-acyclic (drop the
  // big edge and the triangle remains).
  Hypergraph covered(3, {{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}});
  EXPECT_TRUE(covered.IsAlphaAcyclic());
  EXPECT_FALSE(covered.IsBetaAcyclic());
  // Cyclic hypergraphs are not β-acyclic either.
  EXPECT_FALSE(Triangle().IsBetaAcyclic());
  // Nested arity-3 chain (the §5.2 setting) is β-acyclic.
  Hypergraph chain(5, {{0, 1, 2}, {1, 2, 3}, {2, 3, 4}});
  EXPECT_TRUE(chain.IsBetaAcyclic());
}

TEST(Treewidth, KnownValues) {
  EXPECT_EQ(Path(5).Treewidth(), 1);
  EXPECT_EQ(Triangle().Treewidth(), 2);
  EXPECT_EQ(Cycle(4).Treewidth(), 2);
  EXPECT_EQ(Cycle(6).Treewidth(), 2);
  EXPECT_EQ(Clique(4).Treewidth(), 3);
  EXPECT_EQ(Clique(5).Treewidth(), 4);
}

TEST(Treewidth, OptimalOrderAchievesWidth) {
  for (auto h : {Path(6), Cycle(5), Clique(4), Triangle()}) {
    std::vector<int> order;
    int tw = h.Treewidth(&order);
    EXPECT_EQ(h.InducedWidth(order), tw);
  }
}

TEST(Treewidth, BadOrderCanBeWorse) {
  // Eliminating the middle of a path first creates fill: width 2 > 1.
  Hypergraph p = Path(3);
  EXPECT_EQ(p.InducedWidth({1, 0, 2}), 2);
  EXPECT_EQ(p.InducedWidth({0, 1, 2}), 1);
}

TEST(FractionalCover, TriangleIsThreeHalves) {
  EXPECT_NEAR(Triangle().FractionalCoverNumber(), 1.5, 1e-7);
}

TEST(FractionalCover, SubsetRestriction) {
  // ρ* of one edge's endpoints is 1.
  EXPECT_NEAR(Triangle().FractionalCoverNumber(0b011), 1.0, 1e-7);
  // A single vertex costs 1 (any incident edge).
  EXPECT_NEAR(Triangle().FractionalCoverNumber(0b001), 1.0, 1e-7);
  // Empty set costs 0.
  EXPECT_NEAR(Triangle().FractionalCoverNumber(0), 0.0, 1e-9);
}

TEST(FractionalCover, OddCycle) {
  EXPECT_NEAR(Cycle(5).FractionalCoverNumber(), 2.5, 1e-7);
  EXPECT_NEAR(Cycle(7).FractionalCoverNumber(), 3.5, 1e-7);
}

TEST(AgmBound, TriangleSqrtProduct) {
  // Equal sizes N: AGM = N^(3/2), i.e. log2 = 1.5 * log2 N.
  double log_n = 10.0;
  double agm = Triangle().AgmBoundLog2({log_n, log_n, log_n});
  EXPECT_NEAR(agm, 1.5 * log_n, 1e-6);
}

TEST(AgmBound, SkewedSizesPickCheapCover) {
  // One huge relation: avoid it. Triangle with |AB| = 2^20, others 2^2:
  // cover with x_BC = x_AC = 1 covers all three vertices at cost 4.
  double agm = Triangle().AgmBoundLog2({20.0, 2.0, 2.0});
  EXPECT_NEAR(agm, 4.0, 1e-6);
}

TEST(Fhtw, AcyclicIsOne) {
  EXPECT_NEAR(Path(5).FractionalHypertreeWidth(), 1.0, 1e-7);
  Hypergraph star(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_NEAR(star.FractionalHypertreeWidth(), 1.0, 1e-7);
}

TEST(Fhtw, TriangleIsThreeHalves) {
  // The only bag is the triangle itself: fhtw = ρ*(triangle) = 3/2.
  EXPECT_NEAR(Triangle().FractionalHypertreeWidth(), 1.5, 1e-7);
}

TEST(Fhtw, FourCycleIsTwo) {
  // Known: fhtw(C4) = 2 (bags {A,B,C}, {A,C,D}; each needs 2 edges).
  std::vector<int> order;
  EXPECT_NEAR(Cycle(4).FractionalHypertreeWidth(&order), 2.0, 1e-7);
  EXPECT_EQ(order.size(), 4u);
}

TEST(Fhtw, AtMostTreewidthPlusOneBound) {
  for (auto h : {Cycle(5), Clique(4), Path(6)}) {
    double fhtw = h.FractionalHypertreeWidth();
    int tw = h.Treewidth();
    EXPECT_LE(fhtw, tw + 1 + 1e-9);
    EXPECT_GE(fhtw, 1.0 - 1e-9);
  }
}

}  // namespace
}  // namespace tetris
