// Failure injection and edge-of-domain robustness: the engine contract
// only requires the oracle to return gap boxes (at least one containing a
// missing probe). Sloppy oracles — duplicates, dominated boxes, shuffled
// order — must not change the output; deep domains must not overflow.

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/balance.h"
#include "engine/tetris.h"
#include "geometry/decompose.h"
#include "util/rng.h"

namespace tetris {
namespace {

DyadicInterval Iv(uint64_t bits, int len) {
  return {bits, static_cast<uint8_t>(len)};
}
const DyadicInterval kLam = DyadicInterval::Lambda();

// Wraps a materialized oracle and degrades the probe answers: results are
// duplicated, dominated sub-boxes are appended, and the order shuffled.
class SloppyOracle : public BoxOracle {
 public:
  SloppyOracle(const MaterializedOracle* base, uint64_t seed)
      : base_(base), rng_(seed) {}

  int dims() const override { return base_->dims(); }

  void Probe(const DyadicBox& point,
             std::vector<DyadicBox>* out) const override {
    ++probe_count_;
    std::vector<DyadicBox> clean;
    base_->Probe(point, &clean);
    std::vector<DyadicBox> noisy;
    for (const DyadicBox& b : clean) {
      noisy.push_back(b);
      noisy.push_back(b);  // duplicate
      // Dominated sub-box: shrink one non-unit dimension toward the probe.
      DyadicBox sub = b;
      for (int i = 0; i < sub.dims(); ++i) {
        if (sub[i].len < 62 && !point[i].IsLambda() &&
            sub[i].Contains(point[i]) && sub[i].len < point[i].len) {
          sub[i] = point[i].Prefix(sub[i].len + 1);
          break;
        }
      }
      noisy.push_back(sub);
    }
    // Shuffle deterministically.
    for (size_t i = noisy.size(); i > 1; --i) {
      std::swap(noisy[i - 1], noisy[rng_.Below(i)]);
    }
    out->insert(out->end(), noisy.begin(), noisy.end());
  }

  bool EnumerateAll(std::vector<DyadicBox>* out) const override {
    return base_->EnumerateAll(out);
  }

 private:
  const MaterializedOracle* base_;
  mutable Rng rng_;
};

TEST(Robustness, SloppyOracleSameOutput) {
  Rng rng(404);
  for (int iter = 0; iter < 10; ++iter) {
    const int n = 2 + static_cast<int>(rng.Below(2));
    const int d = 3;
    MaterializedOracle clean(n, /*maximal_only=*/false);
    for (int i = 0; i < 20; ++i) {
      DyadicBox b = DyadicBox::Universal(n);
      for (int j = 0; j < n; ++j) {
        int len = static_cast<int>(rng.Below(d + 1));
        b[j] = {rng.Below(uint64_t{1} << len), static_cast<uint8_t>(len)};
      }
      clean.Add(b);
    }
    SloppyOracle sloppy(&clean, iter);
    UniformSpace space(n, d);
    auto run = [&](const BoxOracle& oracle) {
      TetrisOptions opt;
      opt.init = TetrisOptions::Init::kReloaded;
      Tetris engine(&oracle, &space, opt);
      std::vector<std::vector<uint64_t>> out;
      engine.Run([&](const DyadicBox& p) {
        out.push_back(p.ToPoint());
        return true;
      });
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(run(clean), run(sloppy)) << "iter " << iter;
  }
}

TEST(Robustness, DeepDomainBooleanCover) {
  // d = 40: two half-space boxes cover a 2^40-per-dimension cube; the
  // engine must decide coverage without walking the domain.
  const int d = 40;
  MaterializedOracle oracle(2);
  oracle.Add(DyadicBox::Of({Iv(0, 1), kLam}));
  oracle.Add(DyadicBox::Of({Iv(1, 1), kLam}));
  UniformSpace space(2, d);
  TetrisOptions opt;
  opt.init = TetrisOptions::Init::kPreloaded;
  TetrisStats stats;
  EXPECT_TRUE(IsFullyCovered(oracle, space, opt, &stats));
  EXPECT_LE(stats.resolutions, 4);
}

TEST(Robustness, DeepDomainSingleHole) {
  // Cover everything except one point at d = 30; Tetris must find exactly
  // that point, in ~d resolutions, not ~2^d.
  const int d = 30;
  const uint64_t hole_a = 123456789u, hole_b = 987654321u % (1u << 30);
  MaterializedOracle oracle(2);
  // Complement of {hole_a} on A crossed with λ, plus <hole_a> x
  // complement of {hole_b}.
  for (const DyadicInterval& iv :
       DyadicCover(0, hole_a - 1, d)) {
    oracle.Add(DyadicBox::Of({iv, kLam}));
  }
  for (const DyadicInterval& iv :
       DyadicCover(hole_a + 1, (uint64_t{1} << d) - 1, d)) {
    oracle.Add(DyadicBox::Of({iv, kLam}));
  }
  for (const DyadicInterval& iv : DyadicCover(0, hole_b - 1, d)) {
    oracle.Add(DyadicBox::Of({DyadicInterval::Unit(hole_a, d), iv}));
  }
  for (const DyadicInterval& iv :
       DyadicCover(hole_b + 1, (uint64_t{1} << d) - 1, d)) {
    oracle.Add(DyadicBox::Of({DyadicInterval::Unit(hole_a, d), iv}));
  }
  UniformSpace space(2, d);
  TetrisOptions opt;
  opt.init = TetrisOptions::Init::kPreloaded;
  Tetris engine(&oracle, &space, opt);
  std::vector<std::vector<uint64_t>> out;
  engine.Run([&](const DyadicBox& p) {
    out.push_back(p.ToPoint());
    return true;
  });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::vector<uint64_t>{hole_a, hole_b}));
}

TEST(Robustness, LbFallbacksForLowDimensions) {
  // n = 1 and n = 2 skip the lift entirely but must still be correct.
  for (int n : {1, 2}) {
    MaterializedOracle oracle(n);
    DyadicBox half = DyadicBox::Universal(n);
    half[0] = Iv(0, 1);
    oracle.Add(half);
    TetrisLB lb(&oracle, n, 3, /*preloaded=*/true);
    int64_t outputs = 0;
    EXPECT_EQ(lb.Run([&](const DyadicBox&) {
      ++outputs;
      return true;
    }),
              RunStatus::kCompleted);
    // Half the space is uncovered: 4 * 8^{n-1} points.
    EXPECT_EQ(outputs, n == 1 ? 4 : 32);
  }
}

TEST(Robustness, RepeatedRunsAreDeterministic) {
  MaterializedOracle oracle(3);
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    DyadicBox b = DyadicBox::Universal(3);
    for (int j = 0; j < 3; ++j) {
      int len = static_cast<int>(rng.Below(3));
      b[j] = {rng.Below(uint64_t{1} << len), static_cast<uint8_t>(len)};
    }
    oracle.Add(b);
  }
  UniformSpace space(3, 3);
  std::vector<std::vector<uint64_t>> first;
  for (int run = 0; run < 3; ++run) {
    TetrisOptions opt;
    opt.init = TetrisOptions::Init::kReloaded;
    Tetris engine(&oracle, &space, opt);
    std::vector<std::vector<uint64_t>> out;
    engine.Run([&](const DyadicBox& p) {
      out.push_back(p.ToPoint());
      return true;
    });
    if (run == 0) {
      first = out;
    } else {
      EXPECT_EQ(out, first) << "non-deterministic enumeration order";
    }
  }
}

}  // namespace
}  // namespace tetris
