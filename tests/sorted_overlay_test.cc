// Differential suite for the SortedIndex permutation view + delta
// overlay (index/sorted_index.h): a promoted index must answer every
// probe entry point — Contains, GapsContaining, AllGaps,
// GapsIntersecting — exactly like a fresh rebuild over the mutated
// relation, across layouts, insert+delete mixes, chained promotions,
// and the compaction boundary. TSan runs this suite in CI (promotion
// races with in-flight probes).
#include "index/sorted_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace tetris {
namespace {

std::vector<std::string> BoxKeys(const std::vector<DyadicBox>& boxes) {
  std::vector<std::string> keys;
  keys.reserve(boxes.size());
  for (const DyadicBox& b : boxes) keys.push_back(b.ToString());
  std::sort(keys.begin(), keys.end());
  return keys;
}

Tuple RandomTupleOf(Rng* rng, int k, int d) {
  Tuple t(k);
  for (int c = 0; c < k; ++c) t[c] = rng->Below(uint64_t{1} << d);
  return t;
}

Relation RandomRel(Rng* rng, int k, int d, size_t n) {
  std::vector<std::string> attrs;
  for (int c = 0; c < k; ++c) attrs.push_back(std::string(1, 'A' + c));
  std::vector<Tuple> ts;
  ts.reserve(n);
  for (size_t i = 0; i < n; ++i) ts.push_back(RandomTupleOf(rng, k, d));
  return Relation::Make("R", std::move(attrs), std::move(ts));
}

// The registry's effective-delta semantics (relation_registry.cc):
// added tuples already present and removed tuples absent vanish.
struct EffectiveDelta {
  std::vector<Tuple> added;
  std::vector<Tuple> removed;
};

EffectiveDelta MakeEffective(const Relation& old_rel, std::vector<Tuple> add,
                             std::vector<Tuple> del) {
  auto canon = [](std::vector<Tuple>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  canon(&add);
  canon(&del);
  EffectiveDelta eff;
  for (Tuple& t : add) {
    if (!old_rel.Contains(t)) eff.added.push_back(std::move(t));
  }
  for (Tuple& t : del) {
    if (old_rel.Contains(t)) eff.removed.push_back(std::move(t));
  }
  return eff;
}

// old_rel ∪ added ∖ removed, canonical.
Relation ApplyDeltaToRelation(const Relation& old_rel,
                              const EffectiveDelta& eff) {
  Relation next(old_rel.name(), old_rel.attrs());
  for (TupleRef t : old_rel.rows()) {
    if (!std::binary_search(eff.removed.begin(), eff.removed.end(),
                            t.ToTuple())) {
      next.AddRow(t.data());
    }
  }
  for (const Tuple& t : eff.added) next.Add(t);
  next.Canonicalize();
  return next;
}

// Pins overlay == fresh on every probe entry point.
void ExpectIndexesAgree(const SortedIndex& overlay, const SortedIndex& fresh,
                        const Relation& new_rel, Rng* rng, int d,
                        const std::vector<Tuple>& interesting_probes) {
  const int k = fresh.arity();
  ASSERT_EQ(overlay.arity(), k);
  EXPECT_EQ(overlay.rows(), new_rel.size());
  EXPECT_EQ(fresh.rows(), new_rel.size());

  // Contains + GapsContaining: every live tuple, every delta tuple, and
  // random probes.
  std::vector<Tuple> probes = interesting_probes;
  for (TupleRef t : new_rel.rows()) probes.push_back(t.ToTuple());
  for (int i = 0; i < 32; ++i) probes.push_back(RandomTupleOf(rng, k, d));
  for (const Tuple& t : probes) {
    EXPECT_EQ(overlay.Contains(t), fresh.Contains(t))
        << overlay.Describe() << " t=" << t[0];
    EXPECT_EQ(overlay.Contains(t), new_rel.Contains(t));
    std::vector<DyadicBox> og, fg;
    overlay.GapsContaining(t, &og);
    fresh.GapsContaining(t, &fg);
    EXPECT_EQ(BoxKeys(og), BoxKeys(fg)) << overlay.Describe();
    EXPECT_EQ(og.empty(), new_rel.Contains(t));
  }

  // AllGaps set-equality.
  std::vector<DyadicBox> oa, fa;
  overlay.AllGaps(&oa);
  fresh.AllGaps(&fa);
  EXPECT_EQ(BoxKeys(oa), BoxKeys(fa)) << overlay.Describe();

  // GapsIntersecting on random subcubes (including the universal box).
  for (int probe = 0; probe < 8; ++probe) {
    DyadicBox box = DyadicBox::Universal(k);
    if (probe > 0) {
      for (int c = 0; c < k; ++c) {
        const int len = static_cast<int>(rng->Below(d + 1));
        box[c] = {rng->Below(uint64_t{1} << len), static_cast<uint8_t>(len)};
      }
    }
    std::vector<DyadicBox> oi, fi;
    overlay.GapsIntersecting(box, &oi);
    fresh.GapsIntersecting(box, &fi);
    EXPECT_EQ(BoxKeys(oi), BoxKeys(fi))
        << overlay.Describe() << " box=" << box.ToString();
  }
}

TEST(SortedOverlayTest, PromotedMatchesFreshRebuildRandomized) {
  // Insert+delete mixes across arities and layouts; deltas small enough
  // to stay below the compaction threshold so the overlay path itself
  // is what gets exercised.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 977);
    const int k = 2 + static_cast<int>(seed % 2);  // arity 2 and 3
    const int d = 4;
    const size_t n = 120;
    auto old_rel =
        std::make_shared<const Relation>(RandomRel(&rng, k, d, n));

    std::vector<std::vector<int>> layouts;
    std::vector<int> identity(k), reversed(k);
    for (int c = 0; c < k; ++c) {
      identity[c] = c;
      reversed[c] = k - 1 - c;
    }
    layouts.push_back(identity);
    layouts.push_back(reversed);

    // Mixed delta: new rows, duplicate adds, real deletes, absent
    // deletes — the registry reduces these to the effective delta.
    std::vector<Tuple> add, del;
    for (int i = 0; i < 5; ++i) add.push_back(RandomTupleOf(&rng, k, d));
    add.push_back(old_rel->row(0).ToTuple());  // duplicate add (no-op)
    for (int i = 0; i < 4; ++i) {
      del.push_back(
          old_rel->row(rng.Below(old_rel->size())).ToTuple());
    }
    del.push_back(RandomTupleOf(&rng, k, d));  // likely-absent delete
    const EffectiveDelta eff = MakeEffective(*old_rel, add, del);
    const Relation new_rel = ApplyDeltaToRelation(*old_rel, eff);

    std::vector<Tuple> interesting = eff.added;
    interesting.insert(interesting.end(), eff.removed.begin(),
                       eff.removed.end());

    for (const std::vector<int>& layout : layouts) {
      SCOPED_TRACE("seed=" + std::to_string(seed));
      auto base = std::make_shared<const SortedIndex>(*old_rel, layout, d);
      bool compacted = true;
      auto promoted = SortedIndex::Promote(base, old_rel, new_rel, eff.added,
                                           eff.removed, &compacted);
      ASSERT_NE(promoted, nullptr);
      EXPECT_FALSE(compacted);  // delta is far below rows/8 + 8
      EXPECT_EQ(promoted->pin().get(), old_rel.get());
      EXPECT_EQ(promoted->overlay_rows(),
                eff.added.size() + eff.removed.size());
      // Permutation view + overlay footprint, never a materialized copy.
      EXPECT_LE(promoted->MemoryBytes(),
                old_rel->size() * sizeof(uint32_t) +
                    eff.added.size() * static_cast<size_t>(k) *
                        sizeof(uint64_t) +
                    eff.removed.size() * sizeof(uint32_t));
      SortedIndex fresh(new_rel, layout, d);
      ExpectIndexesAgree(*promoted, fresh, new_rel, &rng, d, interesting);
    }
  }
}

TEST(SortedOverlayTest, ChainedPromotionsStayExact) {
  Rng rng(4242);
  const int k = 2;
  const int d = 5;
  auto version = std::make_shared<const Relation>(RandomRel(&rng, k, d, 200));
  const auto original = version;
  auto index = std::make_shared<const SortedIndex>(*version, d);
  std::vector<Tuple> touched;
  for (int epoch = 0; epoch < 6; ++epoch) {
    std::vector<Tuple> add, del;
    add.push_back(RandomTupleOf(&rng, k, d));
    del.push_back(version->row(rng.Below(version->size())).ToTuple());
    const EffectiveDelta eff = MakeEffective(*version, add, del);
    auto next_version = std::make_shared<const Relation>(
        ApplyDeltaToRelation(*version, eff));
    bool compacted = false;
    index = SortedIndex::Promote(index, version, *next_version, eff.added,
                                 eff.removed, &compacted);
    ASSERT_FALSE(compacted);  // 12 overlay rows max, threshold ~33
    // A chain pins the ORIGINAL base version — that is the buffer the
    // shared permutation reads through.
    EXPECT_EQ(index->pin().get(), original.get());
    version = next_version;
    touched.insert(touched.end(), eff.added.begin(), eff.added.end());
    touched.insert(touched.end(), eff.removed.begin(), eff.removed.end());
    SortedIndex fresh(*version, d);
    ExpectIndexesAgree(*index, fresh, *version, &rng, d, touched);
  }
}

TEST(SortedOverlayTest, CompactionBoundaryFoldsTheOverlay) {
  Rng rng(7);
  const int k = 2;
  const int d = 6;
  auto old_rel = std::make_shared<const Relation>(RandomRel(&rng, k, d, 64));
  auto base = std::make_shared<const SortedIndex>(*old_rel, d);

  // Build an all-new-rows delta sized exactly at the threshold, then
  // one past it: overlay_rows > live/8 + 8 triggers the fold.
  auto fresh_rows = [&](size_t count) {
    std::vector<Tuple> rows;
    uint64_t v = (uint64_t{1} << d) - 1;
    while (rows.size() < count) {
      Tuple t{v, v};
      if (!old_rel->Contains(t)) rows.push_back(t);
      --v;
    }
    return rows;
  };

  // At-threshold: live = 64 + m rows; pick m where m <= live/8 + 8.
  {
    const std::vector<Tuple> add = fresh_rows(16);  // 16 <= 80/8 + 8 = 18
    const Relation new_rel =
        ApplyDeltaToRelation(*old_rel, EffectiveDelta{add, {}});
    ASSERT_FALSE(
        SortedIndex::ShouldCompact(add.size(), new_rel.size()));
    bool compacted = true;
    auto p = SortedIndex::Promote(base, old_rel, new_rel, add, {},
                                  &compacted);
    EXPECT_FALSE(compacted);
    EXPECT_EQ(p->overlay_rows(), add.size());
    EXPECT_EQ(p->pin().get(), old_rel.get());
    ExpectIndexesAgree(*p, SortedIndex(new_rel, d), new_rel, &rng, d, add);
  }

  // Past-threshold: the promotion folds into a fresh base permutation
  // over the new version and releases the pin.
  {
    const std::vector<Tuple> add = fresh_rows(30);  // 30 > 94/8 + 8 = 19
    const Relation new_rel =
        ApplyDeltaToRelation(*old_rel, EffectiveDelta{add, {}});
    ASSERT_TRUE(SortedIndex::ShouldCompact(add.size(), new_rel.size()));
    bool compacted = false;
    auto p = SortedIndex::Promote(base, old_rel, new_rel, add, {},
                                  &compacted);
    EXPECT_TRUE(compacted);
    EXPECT_EQ(p->overlay_rows(), 0u);
    EXPECT_EQ(p->pin(), nullptr);
    EXPECT_EQ(p->MemoryBytes(), new_rel.size() * sizeof(uint32_t));
    ExpectIndexesAgree(*p, SortedIndex(new_rel, d), new_rel, &rng, d, add);
  }
}

TEST(SortedOverlayTest, OverlayBookkeepingSemantics) {
  const int d = 4;
  auto rel = std::make_shared<const Relation>(Relation::Make(
      "R", {"A", "B"}, {{1, 1}, {2, 2}, {3, 3}}));
  auto base = std::make_shared<const SortedIndex>(*rel, d);
  EXPECT_EQ(base->MemoryBytes(), 3 * sizeof(uint32_t));
  EXPECT_EQ(base->Describe(), "btree(c0,c1)");

  // Remove a base row and add a new one.
  Relation v2 = Relation::Make("R", {"A", "B"}, {{1, 1}, {3, 3}, {5, 5}});
  auto p = SortedIndex::Promote(base, rel, v2, {{5, 5}}, {{2, 2}});
  EXPECT_EQ(p->rows(), 3u);
  EXPECT_EQ(p->overlay_rows(), 2u);
  EXPECT_EQ(p->MemoryBytes(),
            3 * sizeof(uint32_t) + 2 * sizeof(uint64_t) + sizeof(uint32_t));
  EXPECT_EQ(p->Describe(), "btree(c0,c1)+ovl{1a,1r}");
  EXPECT_FALSE(p->Contains({2, 2}));
  EXPECT_TRUE(p->Contains({5, 5}));

  // Re-adding the tombstoned row un-removes; removing the overlay row
  // un-adds — the overlay cancels back to empty.
  auto v2p = std::make_shared<const Relation>(std::move(v2));
  Relation v3 = Relation::Make("R", {"A", "B"}, {{1, 1}, {2, 2}, {3, 3}});
  auto q = SortedIndex::Promote(p, v2p, v3, {{2, 2}}, {{5, 5}});
  EXPECT_EQ(q->overlay_rows(), 0u);
  EXPECT_EQ(q->rows(), 3u);
  EXPECT_TRUE(q->Contains({2, 2}));
  EXPECT_FALSE(q->Contains({5, 5}));
  EXPECT_EQ(q->Describe(), "btree(c0,c1)");
}

TEST(SortedOverlayTest, ConcurrentProbesDuringPromotionChain) {
  // TSan coverage: promotion reads a shared base index while probe
  // threads hammer the published one — const probes keep no mutable
  // scratch, and Promote never mutates its input.
  Rng rng(99);
  const int k = 2;
  const int d = 5;
  auto version = std::make_shared<const Relation>(RandomRel(&rng, k, d, 150));
  auto index = std::make_shared<const SortedIndex>(*version, d);

  std::vector<std::thread> probers;
  for (int t = 0; t < 2; ++t) {
    probers.emplace_back([index, d, t]() {
      Rng prng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 200; ++i) {
        Tuple probe{prng.Below(uint64_t{1} << d),
                    prng.Below(uint64_t{1} << d)};
        std::vector<DyadicBox> gaps;
        index->GapsContaining(probe, &gaps);
        if (index->Contains(probe)) {
          EXPECT_TRUE(gaps.empty());
        }
        std::vector<DyadicBox> all;
        index->AllGaps(&all);
      }
    });
  }

  auto chained = index;
  auto chained_version = version;
  for (int epoch = 0; epoch < 4; ++epoch) {
    std::vector<Tuple> add = {RandomTupleOf(&rng, k, d)};
    const EffectiveDelta eff = MakeEffective(*chained_version, add, {});
    auto next_version = std::make_shared<const Relation>(
        ApplyDeltaToRelation(*chained_version, eff));
    chained = SortedIndex::Promote(chained, chained_version, *next_version,
                                   eff.added, eff.removed);
    chained_version = next_version;
  }
  for (std::thread& t : probers) t.join();
  SortedIndex fresh(*chained_version, d);
  ExpectIndexesAgree(*chained, fresh, *chained_version, &rng, d, {});
}

}  // namespace
}  // namespace tetris
